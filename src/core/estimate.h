// Closed-form campaign estimator: predicts makespan, instance hours and
// cost of an atlas campaign from the catalog and configuration WITHOUT
// running the event simulation — the back-of-envelope a platform engineer
// does before launching (and a cross-check on the simulator: the two must
// agree when queueing effects are small).
#pragma once

#include <vector>

#include "core/atlas_sim.h"
#include "sim/catalog.h"

namespace staratlas {

struct CampaignEstimate {
  double total_work_hours = 0.0;     ///< sum of per-sample pipeline time
  double align_hours = 0.0;          ///< alignment share (after early stop)
  double align_hours_saved = 0.0;    ///< expected early-stop savings
  usize expected_early_stops = 0;
  /// Boot-time index init per instance (download + materialization under
  /// the configured load path) — the shared init-cost term (see
  /// campaign_init_hours).
  double init_hours_per_instance = 0.0;
  double makespan_hours = 0.0;       ///< work / fleet + boot/init overhead
  double instance_hours = 0.0;
  double ec2_cost_usd = 0.0;
  double cost_per_sample_usd = 0.0;
};

/// One instance's boot-time index-initialization hours under `config` —
/// THE init-cost function: the closed-form estimator, the campaign
/// planner and the event sim's worker boot all derive init cost from the
/// same StageTimeModel call with the same load path, so their plumbing
/// cannot diverge (regression-tested estimate-vs-sim in planner_test).
double campaign_init_hours(const AtlasConfig& config);

/// Deterministic expectation (uses each sample's library type directly —
/// the estimator assumes the early-stop rule is accurate, which ABL-ES
/// justifies at the paper's design point). Per-sample stage times come
/// from the SAME pipeline graph plan the event simulator walks
/// (PipelineCatalog lookup of config.pipeline + stage_context_for), so
/// estimator and simulator arithmetic agree by construction.
CampaignEstimate estimate_campaign(const std::vector<SraSample>& catalog,
                                   const AtlasConfig& config);

}  // namespace staratlas
