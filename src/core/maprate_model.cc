#include "core/maprate_model.h"

#include <algorithm>

#include "common/stats.h"

namespace staratlas {

double MapRateModel::sample_true_rate(LibraryType type, Rng& rng) const {
  const double mean =
      type == LibraryType::kBulk ? bulk_mean : single_cell_mean;
  const double sd = type == LibraryType::kBulk ? bulk_sd : single_cell_sd;
  return std::clamp(rng.normal(mean, sd), 0.02, 0.99);
}

double MapRateModel::checkpoint_observation(double true_rate, Rng& rng) const {
  return std::clamp(rng.normal(true_rate, checkpoint_noise_sd), 0.0, 1.0);
}

void MapRateModel::calibrate(const std::vector<double>& bulk_rates,
                             const std::vector<double>& single_cell_rates) {
  if (!bulk_rates.empty()) {
    bulk_mean = mean(bulk_rates);
    bulk_sd = std::max(0.005, stddev(bulk_rates));
  }
  if (!single_cell_rates.empty()) {
    single_cell_mean = mean(single_cell_rates);
    single_cell_sd = std::max(0.005, stddev(single_cell_rates));
  }
}

}  // namespace staratlas
