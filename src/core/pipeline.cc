#include "core/pipeline.h"

#include <chrono>

#include "common/error.h"
#include "sra/toolkit.h"

namespace staratlas {

PipelineRunner::PipelineRunner(const GenomeIndex& index,
                               const Annotation& annotation,
                               SraRepository& repository,
                               PipelineConfig config)
    : index_(&index),
      annotation_(&annotation),
      repository_(&repository),
      config_(std::move(config)),
      engine_(index, &annotation, config_.engine) {
  config_.early_stop.validate();
  // The engine must check progress at least as often as the early-stop
  // checkpoint needs, or the decision would come late.
  if (config_.engine.progress_check_interval == 0) {
    // default (total/50) is fine for a 10% checkpoint
  }
}

SampleResult PipelineRunner::process(const std::string& accession) {
  SampleResult result;
  result.accession = accession;

  // Stage 1: prefetch.
  const PrefetchResult fetched = prefetch(*repository_, accession);
  result.sra_bytes = fetched.bytes_transferred;
  result.library_type = fetched.metadata.library_type;

  // Stages 2+3 overlap: the engine's producer thread decodes container
  // batches (fasterq-dump) while its workers align them, under the
  // bounded-queue backpressure of run_stream — peak ingest memory is a
  // few batch arenas, never the whole decoded FASTQ. Batch size equals
  // the engine chunk size so progress checkpoints (and the early-stop
  // decision) cross the same read-count boundaries as the batch path.
  // On an early stop the dump is cut short too, so fastq_bytes reflects
  // what was actually decoded (the full sample on a completed run).
  FasterqDumpStream dump(fetched.container);
  result.total_reads = dump.metadata().num_reads;
  const usize batch_reads = config_.engine.chunk_size;
  double dump_seconds = 0.0;
  const BatchSource source = [&](ReadBatch& batch) {
    const auto start = std::chrono::steady_clock::now();
    const usize appended = dump.next_batch(batch, batch_reads);
    dump_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return appended > 0;
  };
  EarlyStopController controller(config_.early_stop);
  const AlignmentRun run = engine_.run_stream(
      source, dump.metadata().num_reads, controller.callback());
  result.dump_wall_seconds = dump_seconds;
  result.fastq_bytes = dump.fastq_bytes();
  result.align_wall_seconds = run.wall_seconds;
  result.stats = run.stats;
  result.gene_counts = run.gene_counts;
  result.early_stop = controller.decision();

  // Stage 4 happens across samples (DESeq2 over the count matrix); here we
  // record acceptance: a completed run above the atlas threshold.
  result.accepted = !run.aborted &&
                    result.stats.mapped_rate() >=
                        config_.early_stop.min_mapped_rate;
  return result;
}

}  // namespace staratlas
