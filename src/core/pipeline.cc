#include "core/pipeline.h"

#include <chrono>

#include "common/error.h"
#include "sra/toolkit.h"

namespace staratlas {

PipelineRunner::PipelineRunner(const GenomeIndex& index,
                               const Annotation& annotation,
                               SraRepository& repository,
                               PipelineConfig config)
    : index_(&index),
      annotation_(&annotation),
      repository_(&repository),
      config_(std::move(config)),
      engine_(index, &annotation, config_.engine) {
  config_.early_stop.validate();
  // The engine must check progress at least as often as the early-stop
  // checkpoint needs, or the decision would come late.
  if (config_.engine.progress_check_interval == 0) {
    // default (total/50) is fine for a 10% checkpoint
  }
}

SampleResult PipelineRunner::process(const std::string& accession) {
  SampleResult result;
  result.accession = accession;

  // Stage 1: prefetch.
  const PrefetchResult fetched = prefetch(*repository_, accession);
  result.sra_bytes = fetched.bytes_transferred;
  result.library_type = fetched.metadata.library_type;

  // Stage 2: fasterq-dump.
  const auto dump_start = std::chrono::steady_clock::now();
  const DumpResult dumped = fasterq_dump(fetched.container);
  result.dump_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    dump_start)
          .count();
  result.fastq_bytes = dumped.fastq_bytes;
  result.total_reads = dumped.reads.size();

  // Stage 3: STAR alignment with GeneCounts and early stopping. The
  // engine (and its worker pool + workspaces) persists across accessions.
  EarlyStopController controller(config_.early_stop);
  const AlignmentRun run = engine_.run(dumped.reads, controller.callback());
  result.align_wall_seconds = run.wall_seconds;
  result.stats = run.stats;
  result.gene_counts = run.gene_counts;
  result.early_stop = controller.decision();

  // Stage 4 happens across samples (DESeq2 over the count matrix); here we
  // record acceptance: a completed run above the atlas threshold.
  result.accepted = !run.aborted &&
                    result.stats.mapped_rate() >=
                        config_.early_stop.min_mapped_rate;
  return result;
}

}  // namespace staratlas
