#include "core/shard_sim.h"

#include <cmath>

#include "cloud/cost.h"
#include "cloud/event_sim.h"
#include "cloud/s3.h"
#include "common/error.h"

namespace staratlas {

namespace {
/// StageTimeModel's vCPU scaling with fractional vCPUs (FaaS workers get
/// fractional cores below the 1769 MB-per-vCPU line).
double vcpu_speedup(double vcpus, double alpha) {
  return std::pow(vcpus / 16.0, alpha);
}
}  // namespace

ScatterGatherResult simulate_scatter_gather(const ScatterGatherQuery& query) {
  STARATLAS_CHECK(query.num_workers >= 1);
  STARATLAS_CHECK(query.index_touch_fraction >= 0.0 &&
                  query.index_touch_fraction <= 1.0);
  ScatterGatherResult result;
  result.workers = query.num_workers;
  result.cold_start =
      VirtualDuration::seconds(query.worker.cold_start_seconds);
  // mmap keeps the index out of the function's provisioned memory (pages
  // are evictable shared-FS cache); only the engine working set counts.
  if (query.worker.memory < query.worker_headroom) return result;
  result.feasible = true;

  const StageTimeModel& model = query.cloud.stages;
  // Index attach: O(header) mmap (the v3 stream-load cost divided by the
  // measured attach speedup) plus first-touch streaming of the pages the
  // alignment actually faults in.
  const double attach_secs =
      query.cloud.index_bytes.gib() / model.shm_load_gibps / model.mmap_attach_speedup;
  const VirtualDuration first_touch = S3Bucket::transfer_time(
      query.cloud.index_bytes * query.index_touch_fraction,
      query.worker.network_gbps);
  result.attach = VirtualDuration::seconds(attach_secs) + first_touch;

  const ByteSize shard_bytes =
      query.sample_fastq * (1.0 / static_cast<double>(query.num_workers));
  const double slowdown =
      query.cloud.genome_release == 108 ? model.release_slowdown_108 : 1.0;
  result.worker_align = VirtualDuration::seconds(
      model.align_secs_per_gib_r111_16vcpu * slowdown * shard_bytes.gib() /
      vcpu_speedup(query.worker.vcpus, model.vcpu_scaling_alpha));
  result.gather = VirtualDuration::seconds(query.gather_secs_per_gib *
                                           query.sample_fastq.gib());

  // Discrete-event run: every worker is invoked at t=0, the gather
  // function fires when the last worker lands.
  SimKernel sim;
  const VirtualDuration worker_total =
      result.cold_start + result.attach + result.worker_align;
  usize workers_done = 0;
  for (usize w = 0; w < query.num_workers; ++w) {
    sim.schedule_after(worker_total, [&] {
      if (++workers_done == query.num_workers) {
        sim.schedule_after(result.cold_start + result.gather, [&] {
          result.makespan = VirtualDuration::seconds(sim.now().secs());
        });
      }
    });
  }
  sim.run();
  result.sim_events = sim.events_processed();

  result.cost_usd =
      static_cast<double>(query.num_workers) *
          query.worker.invoke_cost(worker_total.secs()) +
      query.worker.invoke_cost((result.cold_start + result.gather).secs());
  return result;
}

SingleInstanceResult simulate_single_instance(
    const SingleInstanceQuery& query) {
  SingleInstanceResult result;
  const StageTimeModel& model = query.cloud.stages;
  if (query.instance.memory <
      StageTimeModel::required_memory(query.cloud.index_bytes)) {
    return result;
  }
  result.feasible = true;
  result.boot_and_init = VirtualDuration::seconds(query.boot_seconds) +
                         query.cloud.index_init_time(query.instance);
  result.makespan =
      result.boot_and_init +
      model.align_time(query.sample_fastq, query.cloud.genome_release,
                       query.instance) +
      model.postprocess_time();
  CostMeter meter;
  meter.add_instance_time(query.instance, result.makespan.secs(), query.spot);
  result.cost_usd = meter.total_usd();
  return result;
}

}  // namespace staratlas
