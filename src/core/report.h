// Fixed-width table rendering used by the bench harness so every
// experiment prints paper-vs-measured rows in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace staratlas {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header underline.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string (benches format many cells).
std::string strf(const char* fmt, ...);

}  // namespace staratlas
