// StageTimeModel: virtual-time costs of the four pipeline stages on a
// given instance type, at paper scale.
//
// Anchors (documented in EXPERIMENTS.md):
//  * STAR on release-111 index, r6a.4xlarge (16 vCPU): the paper's Fig 4
//    corpus averaged 155.8h / 1000 alignments ~ 9.35 min per alignment at
//    mean FASTQ size 15.9 GiB -> ~35.3 s per FASTQ GiB.
//  * The release-108 slowdown factor is MEASURED by this repository's
//    Fig 3 bench on the real (synthetic-genome) aligner and passed in via
//    `release_slowdown`.
//  * fasterq-dump and prefetch are I/O-dominated; rates below are typical
//    of sra-tools on EBS-backed instances.
#pragma once

#include <array>

#include "cloud/instance_types.h"
#include "common/units.h"
#include "common/vclock.h"

namespace staratlas {

/// The per-sample execution stages as the atlas simulator runs them. The
/// alignment stage is split at the early-stopping checkpoint so an
/// interruption (and the wasted-work accounting) can distinguish "died
/// before the decision" from "died burning post-checkpoint compute".
enum class SampleStage : u8 {
  kPrefetch = 0,      ///< download .sra (network transfer, retryable)
  kDump,              ///< fasterq-dump .sra -> FASTQ
  kAlignCheckpoint,   ///< STAR up to the early-stop checkpoint fraction
  kAlignRest,         ///< remainder of the alignment (skipped on stop)
  kPostprocess,       ///< count normalization + bookkeeping
  kUpload,            ///< S3 result upload (transfer, retryable)
};
inline constexpr usize kNumSampleStages = 6;

/// Short stable label ("prefetch", "dump", ...) for reports and the
/// fault injector's per-operation streams.
const char* stage_name(SampleStage stage);

/// True for stages that are network transfers (prefetch / S3 upload) —
/// the operations the FaultInjector perturbs and workers retry.
constexpr bool is_transfer_stage(SampleStage stage) {
  return stage == SampleStage::kPrefetch || stage == SampleStage::kUpload;
}

/// How a worker materializes the downloaded index at boot. kStream is the
/// v2 path (read + copy every section through memory at shm_load_gibps);
/// kMmap is the v3 zero-copy attach, whose cost is the stream cost divided
/// by the measured `mmap_attach_speedup` (bench_index_startup).
enum class IndexLoadPath : u8 { kStream = 0, kMmap };

/// One sample's planned per-stage durations. The durations always sum to
/// exactly the single-block service time the simulator used before the
/// stage machine existed (prefetch + dump + actual align + postprocess),
/// so fault-free campaigns are unchanged by construction.
struct StagePlan {
  std::array<VirtualDuration, kNumSampleStages> durations{};
  bool stop_early = false;
  VirtualDuration align_full;  ///< full alignment (for saved-hours math)

  VirtualDuration duration(SampleStage stage) const {
    return durations[static_cast<usize>(stage)];
  }
  VirtualDuration align_actual() const {
    return duration(SampleStage::kAlignCheckpoint) +
           duration(SampleStage::kAlignRest);
  }
  VirtualDuration total() const;
};

struct StageTimeModel {
  /// STAR seconds per FASTQ GiB on a release-111 index at 16 vCPU.
  double align_secs_per_gib_r111_16vcpu = 35.3;
  /// Measured slowdown of the release-108 index relative to 111 (>12x in
  /// the paper; our Fig 3 bench measures its own value on real alignment).
  double release_slowdown_108 = 12.0;
  /// STAR throughput scales ~vcpus^alpha (sublinear beyond memory bw).
  double vcpu_scaling_alpha = 0.9;
  /// fasterq-dump seconds per output-FASTQ GiB at 16 vCPU.
  double dump_secs_per_gib_16vcpu = 8.0;
  /// NCBI-side download cap in Gbps (bottleneck below instance NICs).
  double sra_source_gbps_cap = 1.5;
  /// Loading the downloaded index into shared memory, GiB per second.
  double shm_load_gibps = 1.2;
  /// Measured cold-load advantage of the v3 mmap attach over the v2
  /// stream load (bench_index_startup cold_load.speedup; see
  /// EXPERIMENTS.md INIT). Applied only when index_init_time is asked for
  /// IndexLoadPath::kMmap.
  double mmap_attach_speedup = 20.0;
  /// DESeq2-stage + result-upload bookkeeping per sample.
  double postprocess_secs = 20.0;

  /// Stage 1: prefetch (download .sra object).
  VirtualDuration prefetch_time(ByteSize sra_bytes,
                                const InstanceType& type) const;
  /// Stage 2: fasterq-dump (.sra -> FASTQ).
  VirtualDuration dump_time(ByteSize fastq_bytes,
                            const InstanceType& type) const;
  /// Stage 3: STAR alignment of the full file.
  VirtualDuration align_time(ByteSize fastq_bytes, int genome_release,
                             const InstanceType& type) const;
  /// Stage 4: count normalization + upload bookkeeping.
  VirtualDuration postprocess_time() const;

  /// Boot-time index initialization: S3 download + index materialization.
  /// The default load path is the v2 stream (download + full copy); the
  /// mmap path divides the materialization term by mmap_attach_speedup —
  /// the download term is unchanged, so init stays download-dominated.
  VirtualDuration index_init_time(
      ByteSize index_bytes, const InstanceType& type,
      IndexLoadPath path = IndexLoadPath::kStream) const;

  /// Per-stage plan for one sample. Alignment is split at
  /// `checkpoint_fraction`; with `stop_early` the post-checkpoint
  /// remainder and the postprocess stage are zero-length. The upload
  /// stage is zero-length (its bookkeeping lives in postprocess_secs);
  /// it exists as a stage so upload faults have a place to land.
  StagePlan plan_sample(ByteSize sra_bytes, ByteSize fastq_bytes,
                        int genome_release, const InstanceType& type,
                        double checkpoint_fraction, bool stop_early) const;

  /// Peak memory needed to run the aligner with a given index resident in
  /// shared memory (index + working set headroom).
  static ByteSize required_memory(ByteSize index_bytes);
};

}  // namespace staratlas
