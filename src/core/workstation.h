// Workstation/HPC batch mode — the paper's closing remark that the two
// optimizations "are applicable outside the cloud environment (HPC or
// workstations)": run the full four-stage pipeline over a batch of
// accessions on one machine and finish with the DESeq2 stage across the
// accepted samples.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "quant/count_matrix.h"
#include "quant/deseq2.h"

namespace staratlas {

struct WorkstationReport {
  std::vector<SampleResult> samples;
  usize accepted = 0;
  usize early_stopped = 0;
  usize rejected = 0;
  double align_wall_seconds = 0.0;
  /// Counts across accepted samples only (the atlas content).
  CountMatrix counts;
  /// DESeq2 size factors per accepted sample; empty when the estimator is
  /// undefined (fewer than 1 accepted sample or no common genes).
  std::vector<double> size_factors;
};

/// Processes `accessions` sequentially (each sample's alignment uses the
/// engine's own threads), assembles the count matrix from accepted
/// samples, and normalizes it.
WorkstationReport run_workstation_batch(
    const GenomeIndex& index, const Annotation& annotation,
    SraRepository& repository, const std::vector<std::string>& accessions,
    const PipelineConfig& config);

}  // namespace staratlas
