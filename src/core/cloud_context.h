// CloudContext: the cloud-environment parameters every cost/capacity
// query needs — index size, genome release, index load path, the stage
// time model, and the pipeline being run. Previously RightSizingQuery,
// the shard_sim queries and the atlas config each carried their own
// copies of these fields (and could silently disagree); they now share
// this one struct, and the campaign planner searches over it.
#pragma once

#include <string>

#include "cloud/instance_types.h"
#include "common/error.h"
#include "common/units.h"
#include "core/stage_model.h"

namespace staratlas {

struct CloudContext {
  /// Index object size (85 GiB for release 108, 29.5 GiB for 111).
  ByteSize index_bytes = ByteSize::from_gib(29.5);
  int genome_release = 111;
  /// How workers materialize the index at boot (stream load vs the v3
  /// mmap attach, which divides the materialization term by the measured
  /// attach speedup).
  IndexLoadPath index_load_path = IndexLoadPath::kStream;
  StageTimeModel stages{};
  /// Pipeline name, looked up in the PipelineCatalog.
  std::string pipeline = "alignment";

  /// Sets release + the matching paper-scale index size.
  void use_release(int release) {
    STARATLAS_CHECK(release == 108 || release == 111);
    genome_release = release;
    index_bytes = release == 108 ? ByteSize::from_gib(85.0)
                                 : ByteSize::from_gib(29.5);
  }

  /// Peak RAM an instance needs with this index resident.
  ByteSize required_memory() const {
    return StageTimeModel::required_memory(index_bytes);
  }

  /// Boot-time index initialization on `type` under this context's load
  /// path — THE init-cost function: the estimator, the event sim and the
  /// planner all call this, so their init plumbing cannot diverge.
  VirtualDuration index_init_time(const InstanceType& type) const {
    return stages.index_init_time(index_bytes, type, index_load_path);
  }
};

}  // namespace staratlas
