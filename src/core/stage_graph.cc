#include "core/stage_graph.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace staratlas {

InstanceType StageContext::effective_instance() const {
  STARATLAS_CHECK(instance != nullptr);
  InstanceType type = *instance;
  if (align_threads > 0 && align_threads < type.vcpus) {
    type.vcpus = align_threads;
  }
  return type;
}

VirtualDuration GraphPlan::total() const {
  VirtualDuration sum;
  for (const VirtualDuration& d : durations) sum += d;
  return sum;
}

StageId StageGraph::add_stage(StageNode node, std::vector<StageId> deps) {
  if (!node.cost) {
    throw InvalidArgument("stage '" + node.name + "' has no cost function");
  }
  const StageId id = static_cast<StageId>(nodes_.size());
  for (StageId dep : deps) {
    if (dep >= id) {
      throw InvalidArgument("stage '" + node.name +
                            "' depends on a stage that does not exist yet");
    }
  }
  nodes_.push_back(std::move(node));
  deps_.push_back(std::move(deps));
  validated_ = false;
  return id;
}

void StageGraph::add_edge(StageId from, StageId to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw InvalidArgument("add_edge: unknown stage id");
  }
  deps_[to].push_back(from);
  validated_ = false;
}

void StageGraph::validate() {
  if (nodes_.empty()) throw InvalidArgument("stage graph is empty");

  // Kahn's algorithm with a smallest-id-first ready set: a deterministic
  // topological order that equals insertion order for any chain (and in
  // particular the historical SampleStage order for the alignment
  // pipeline, which the bit-identity contract depends on).
  std::vector<usize> pending(nodes_.size());
  std::vector<std::vector<StageId>> dependents(nodes_.size());
  for (StageId id = 0; id < nodes_.size(); ++id) {
    pending[id] = deps_[id].size();
    for (StageId dep : deps_[id]) dependents[dep].push_back(id);
  }
  topo_.clear();
  topo_.reserve(nodes_.size());
  std::vector<StageId> ready;
  for (StageId id = 0; id < nodes_.size(); ++id) {
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const auto next = std::min_element(ready.begin(), ready.end());
    const StageId id = *next;
    ready.erase(next);
    topo_.push_back(id);
    for (StageId dependent : dependents[id]) {
      if (--pending[dependent] == 0) ready.push_back(dependent);
    }
  }
  if (topo_.size() != nodes_.size()) {
    throw InvalidArgument("stage graph '" + name_ + "' contains a cycle");
  }
  validated_ = true;
}

const std::vector<StageId>& StageGraph::topo_order() const {
  STARATLAS_CHECK(validated_);
  return topo_;
}

bool StageGraph::supports_early_stop() const {
  for (const StageNode& node : nodes_) {
    if (node.skip_on_early_stop) return true;
  }
  return false;
}

std::vector<std::string> StageGraph::stage_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const StageNode& node : nodes_) names.push_back(node.name);
  return names;
}

GraphPlan StageGraph::plan(const StageContext& ctx, bool stop_early) const {
  STARATLAS_CHECK(validated_);
  STARATLAS_CHECK(ctx.instance != nullptr && ctx.model != nullptr);
  GraphPlan plan;
  plan.stop_early = stop_early;
  plan.durations.resize(nodes_.size());
  for (StageId id = 0; id < nodes_.size(); ++id) {
    const StageNode& node = nodes_[id];
    const VirtualDuration d = (stop_early && node.skip_on_early_stop)
                                  ? VirtualDuration::zero()
                                  : node.cost(ctx);
    plan.durations[id] = d;
    plan.role_totals[static_cast<usize>(node.role)] += d;
  }
  plan.align_full =
      align_full_ ? align_full_(ctx) : plan.role_total(StageRole::kAlign);
  return plan;
}

StageGraph alignment_pipeline() {
  StageGraph graph("alignment");
  // Node names match the historical stage_name() labels: the fault
  // injector keys its deterministic per-operation streams by this name,
  // so renaming a transfer stage would shift fault draws.
  const StageId prefetch = graph.add_stage(
      {.name = "prefetch",
       .kind = StageKind::kTransfer,
       .role = StageRole::kPrefetch,
       .resources = {.cores = 0.1,
                     .ram = ByteSize::from_gib(1.0),
                     .bandwidth_gbps = 1.5,
                     .spot_safe = true,
                     .checkpointable = false},
       .cost =
           [](const StageContext& ctx) {
             return ctx.model->prefetch_time(ctx.sra_bytes, *ctx.instance);
           }});
  const StageId dump = graph.add_stage(
      {.name = "dump",
       .kind = StageKind::kCompute,
       .role = StageRole::kDump,
       .resources = {.cores = 0.75, .ram = ByteSize::from_gib(2.0)},
       .cost =
           [](const StageContext& ctx) {
             const InstanceType type = ctx.effective_instance();
             return ctx.model->dump_time(ctx.fastq_bytes, type);
           }},
      {prefetch});
  const StageId align_ckpt = graph.add_stage(
      {.name = "align_ckpt",
       .kind = StageKind::kCompute,
       .role = StageRole::kAlign,
       .resources = {.cores = 1.0,
                     .ram = ByteSize::from_gib(4.0),
                     .spot_safe = true,
                     .checkpointable = true},
       .cost =
           [](const StageContext& ctx) {
             const InstanceType type = ctx.effective_instance();
             return ctx.model->align_time(ctx.fastq_bytes, ctx.genome_release,
                                          type) *
                    ctx.checkpoint_fraction;
           }},
      {dump});
  const StageId align_rest = graph.add_stage(
      {.name = "align_rest",
       .kind = StageKind::kCompute,
       .role = StageRole::kAlign,
       .resources = {.cores = 1.0,
                     .ram = ByteSize::from_gib(4.0),
                     .spot_safe = true,
                     .checkpointable = true},
       .skip_on_early_stop = true,
       .cost =
           [](const StageContext& ctx) {
             const InstanceType type = ctx.effective_instance();
             return ctx.model->align_time(ctx.fastq_bytes, ctx.genome_release,
                                          type) *
                    (1.0 - ctx.checkpoint_fraction);
           }},
      {align_ckpt});
  const StageId postprocess = graph.add_stage(
      {.name = "postprocess",
       .kind = StageKind::kFixed,
       .resources = {.cores = 0.25, .ram = ByteSize::from_gib(1.0)},
       .skip_on_early_stop = true,
       .cost =
           [](const StageContext& ctx) {
             return ctx.model->postprocess_time();
           }},
      {align_rest});
  graph.add_stage(
      {.name = "upload",
       .kind = StageKind::kTransfer,
       .resources = {.cores = 0.1,
                     .ram = ByteSize::from_gib(0.5),
                     .bandwidth_gbps = 1.0},
       // Zero-length (upload bookkeeping lives in postprocess_secs); it
       // exists as a node so S3 upload faults have a place to land.
       .cost = [](const StageContext&) { return VirtualDuration::zero(); }},
      {postprocess});
  graph.set_align_full([](const StageContext& ctx) {
    const InstanceType type = ctx.effective_instance();
    return ctx.model->align_time(ctx.fastq_bytes, ctx.genome_release, type);
  });
  graph.validate();
  return graph;
}

StageGraph variant_calling_pipeline() {
  StageGraph graph("variant_calling");
  const StageId prefetch = graph.add_stage(
      {.name = "prefetch",
       .kind = StageKind::kTransfer,
       .role = StageRole::kPrefetch,
       .resources = {.cores = 0.1,
                     .ram = ByteSize::from_gib(1.0),
                     .bandwidth_gbps = 1.5},
       .cost =
           [](const StageContext& ctx) {
             return ctx.model->prefetch_time(ctx.sra_bytes, *ctx.instance);
           }});
  const StageId dump = graph.add_stage(
      {.name = "dump",
       .kind = StageKind::kCompute,
       .role = StageRole::kDump,
       .resources = {.cores = 0.75, .ram = ByteSize::from_gib(2.0)},
       .cost =
           [](const StageContext& ctx) {
             const InstanceType type = ctx.effective_instance();
             return ctx.model->dump_time(ctx.fastq_bytes, type);
           }},
      {prefetch});
  // The aligner stage is REUSED: same cost model as the alignment
  // pipeline, unsplit (variant calling has no early-stop decision point).
  const StageId align = graph.add_stage(
      {.name = "align",
       .kind = StageKind::kCompute,
       .role = StageRole::kAlign,
       .resources = {.cores = 1.0,
                     .ram = ByteSize::from_gib(4.0),
                     .checkpointable = true},
       .cost =
           [](const StageContext& ctx) {
             const InstanceType type = ctx.effective_instance();
             return ctx.model->align_time(ctx.fastq_bytes, ctx.genome_release,
                                          type);
           }},
      {dump});
  // Diamond: sort/markdup and QC both consume the alignment...
  const StageId sort_markdup = graph.add_stage(
      {.name = "sort_markdup",
       .kind = StageKind::kCompute,
       .resources = {.cores = 0.5, .ram = ByteSize::from_gib(4.0)},
       .cost =
           [](const StageContext& ctx) {
             // samtools sort + markdup: I/O-bound, ~6 s per FASTQ GiB at
             // the 16-vCPU reference, with the same sublinear scaling.
             const InstanceType type = ctx.effective_instance();
             const double speedup = std::pow(
                 static_cast<double>(type.vcpus) / 16.0,
                 ctx.model->vcpu_scaling_alpha);
             return VirtualDuration::seconds(6.0 * ctx.fastq_bytes.gib() /
                                             speedup);
           }},
      {align});
  const StageId qc = graph.add_stage(
      {.name = "qc",
       .kind = StageKind::kFixed,
       .resources = {.cores = 0.25, .ram = ByteSize::from_gib(1.0)},
       .cost =
           [](const StageContext&) { return VirtualDuration::seconds(30.0); }},
      {align});
  const StageId call = graph.add_stage(
      {.name = "call_variants",
       .kind = StageKind::kCompute,
       .resources = {.cores = 1.0, .ram = ByteSize::from_gib(4.0)},
       .cost =
           [](const StageContext& ctx) {
             // Haplotype-caller-shaped cost: ~20 s per FASTQ GiB at the
             // reference shape.
             const InstanceType type = ctx.effective_instance();
             const double speedup = std::pow(
                 static_cast<double>(type.vcpus) / 16.0,
                 ctx.model->vcpu_scaling_alpha);
             return VirtualDuration::seconds(20.0 * ctx.fastq_bytes.gib() /
                                             speedup);
           }},
      {sort_markdup});
  // ...and the upload fans both branches back in.
  graph.add_stage(
      {.name = "upload",
       .kind = StageKind::kTransfer,
       .resources = {.cores = 0.1,
                     .ram = ByteSize::from_gib(0.5),
                     .bandwidth_gbps = 1.0},
       .cost = [](const StageContext&) { return VirtualDuration::zero(); }},
      {call, qc});
  graph.set_align_full([](const StageContext& ctx) {
    const InstanceType type = ctx.effective_instance();
    return ctx.model->align_time(ctx.fastq_bytes, ctx.genome_release, type);
  });
  graph.validate();
  return graph;
}

PipelineCatalog::PipelineCatalog() {
  builders_["alignment"] = [] { return alignment_pipeline(); };
  builders_["variant_calling"] = [] { return variant_calling_pipeline(); };
}

PipelineCatalog& PipelineCatalog::instance() {
  static PipelineCatalog catalog;
  return catalog;
}

void PipelineCatalog::register_pipeline(const std::string& name,
                                        Builder builder) {
  STARATLAS_CHECK(builder != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  builders_[name] = std::move(builder);
}

StageGraph PipelineCatalog::build(const std::string& name) const {
  Builder builder;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = builders_.find(name);
    if (it == builders_.end()) {
      throw InvalidArgument("unknown pipeline: " + name);
    }
    builder = it->second;
  }
  StageGraph graph = builder();
  graph.validate();
  return graph;
}

bool PipelineCatalog::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return builders_.count(name) > 0;
}

std::vector<std::string> PipelineCatalog::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, builder] : builders_) out.push_back(name);
  return out;
}

}  // namespace staratlas
