#include "core/rightsizing.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

std::vector<RightSizingOption> evaluate_instances(
    const RightSizingQuery& query) {
  std::vector<RightSizingOption> options;
  const CloudContext& cloud = query.cloud;
  const ByteSize needed = cloud.required_memory();
  for (const auto& type : instance_catalog()) {
    RightSizingOption option;
    option.type = &type;
    if (type.memory < needed) {
      option.feasible = false;
      option.infeasible_reason = "needs " + needed.str() + " RAM, has " +
                                 type.memory.str();
      options.push_back(option);
      continue;
    }
    option.feasible = true;
    const double stage_secs =
        cloud.stages.prefetch_time(query.mean_sra, type).secs() +
        cloud.stages.dump_time(query.mean_fastq, type).secs() +
        cloud.stages
            .align_time(query.mean_fastq, cloud.genome_release, type)
            .secs() +
        cloud.stages.postprocess_time().secs();
    const double init_secs = cloud.index_init_time(type).secs();
    option.sample_seconds =
        stage_secs + init_secs / query.samples_per_boot;
    option.cost_per_sample_usd =
        type.hourly(query.spot) * option.sample_seconds / 3600.0;
    option.samples_per_hour = 3600.0 / option.sample_seconds;
    options.push_back(option);
  }
  std::sort(options.begin(), options.end(),
            [](const RightSizingOption& a, const RightSizingOption& b) {
              if (a.feasible != b.feasible) return a.feasible;
              if (!a.feasible) return a.type->name < b.type->name;
              return a.cost_per_sample_usd < b.cost_per_sample_usd;
            });
  return options;
}

const RightSizingOption& best_option(
    const std::vector<RightSizingOption>& options) {
  for (const auto& option : options) {
    if (option.feasible) return option;
  }
  throw InvalidArgument("no instance type can hold this index in memory");
}

}  // namespace staratlas
