// Instance right-sizing advisor (paper §III.A: "using a much smaller index
// allows us to use smaller and cheaper instances").
//
// Feasibility first: an instance type qualifies only if the genome index
// plus working set fits its RAM. Feasible types are then ranked by modeled
// cost per mean-sized sample (all four stages + amortized boot/init).
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_types.h"
#include "common/units.h"
#include "core/cloud_context.h"
#include "core/stage_model.h"

namespace staratlas {

struct RightSizingOption {
  const InstanceType* type = nullptr;
  bool feasible = false;
  std::string infeasible_reason;
  double sample_seconds = 0.0;     ///< pipeline time for a mean sample
  double cost_per_sample_usd = 0.0;
  double samples_per_hour = 0.0;
};

struct RightSizingQuery {
  /// Index size / release / load path / stage model — shared with the
  /// shard sim and the campaign planner.
  CloudContext cloud{};
  ByteSize mean_fastq = ByteSize::from_gib(15.9);
  ByteSize mean_sra = ByteSize::from_gib(6.9);
  bool spot = false;
  /// Samples processed per instance lifetime, for amortizing the index
  /// download/load into per-sample cost.
  double samples_per_boot = 40.0;
};

/// Evaluates every catalog type; result is sorted feasible-first by cost
/// per sample.
std::vector<RightSizingOption> evaluate_instances(const RightSizingQuery& query);

/// The cheapest feasible option; throws InvalidArgument if none is.
const RightSizingOption& best_option(const std::vector<RightSizingOption>& options);

}  // namespace staratlas
