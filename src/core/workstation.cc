#include "core/workstation.h"

#include "common/error.h"
#include "common/log.h"

namespace staratlas {

WorkstationReport run_workstation_batch(
    const GenomeIndex& index, const Annotation& annotation,
    SraRepository& repository, const std::vector<std::string>& accessions,
    const PipelineConfig& config) {
  WorkstationReport report;
  std::vector<std::string> gene_ids;
  for (const Gene& gene : annotation.genes()) gene_ids.push_back(gene.id);
  report.counts = CountMatrix(gene_ids);

  PipelineRunner runner(index, annotation, repository, config);
  for (const std::string& accession : accessions) {
    SampleResult result = runner.process(accession);
    report.align_wall_seconds += result.align_wall_seconds;
    if (result.early_stop.stopped) {
      ++report.early_stopped;
    } else if (result.accepted) {
      ++report.accepted;
      report.counts.add_sample(accession, result.gene_counts);
    } else {
      ++report.rejected;
    }
    report.samples.push_back(std::move(result));
  }

  if (report.counts.num_samples() >= 1) {
    try {
      report.size_factors = deseq2_size_factors(report.counts);
    } catch (const InvalidArgument& e) {
      // No gene covered in every sample: leave factors empty.
      STARATLAS_LOG(kWarn) << "DESeq2 undefined for batch: " << e.what();
    }
  }
  return report;
}

}  // namespace staratlas
