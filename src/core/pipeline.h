// The real, in-process Transcriptomics Atlas pipeline for one accession
// (Fig 1): prefetch -> fasterq-dump -> STAR alignment (+GeneCounts,
// optional early stopping) -> counts. Everything here does the actual data
// work on synthetic-scale inputs; the cloud simulator (atlas_sim.h) models
// the same stages at paper scale in virtual time.
#pragma once

#include <string>

#include "align/engine.h"
#include "core/early_stopping.h"
#include "genome/annotation.h"
#include "index/genome_index.h"
#include "sra/repository.h"

namespace staratlas {

struct PipelineConfig {
  EngineConfig engine;
  EarlyStopPolicy early_stop;
};

struct SampleResult {
  std::string accession;
  LibraryType library_type = LibraryType::kBulk;
  u64 total_reads = 0;
  ByteSize sra_bytes;    ///< synthetic container size
  ByteSize fastq_bytes;  ///< synthetic decoded FASTQ size
  MappingStats stats;
  GeneCountsTable gene_counts;
  EarlyStopDecision early_stop;
  bool accepted = false;  ///< completed with acceptable mapping rate
  double align_wall_seconds = 0.0;
  double dump_wall_seconds = 0.0;
};

/// Runs the four pipeline stages for every accession handed to process().
/// The alignment engine (worker pool, workspaces, gene-count tables) is
/// built once and reused for every accession, so a multi-sample campaign
/// pays engine setup a single time.
class PipelineRunner {
 public:
  PipelineRunner(const GenomeIndex& index, const Annotation& annotation,
                 SraRepository& repository, PipelineConfig config);

  /// Processes one accession end to end.
  SampleResult process(const std::string& accession);

 private:
  const GenomeIndex* index_;
  const Annotation* annotation_;
  SraRepository* repository_;
  PipelineConfig config_;
  AlignmentEngine engine_;  ///< reused across accessions (LoadAndKeep analog)
};

}  // namespace staratlas
