// Scatter/gather vs single-instance economics in the event sim — the
// follow-up paper's question ("Serverless Approach to Running
// Resource-Intensive STAR Aligner"): at what sample size does splitting
// one sample across many FaaS workers beat one big r6a instance on cost
// and on latency?
//
// Scatter/gather model: N function workers cold-start, attach the
// pre-staged v3 index from a shared filesystem (mmap attach + first-touch
// page streaming — no per-worker S3 download, mirroring align/sharded's
// SharedIndexCache attach), align an equal byte slice, then one gather
// function merges the shard outputs (the deterministic merge layer is
// cheap and linear in sample size). Billing is per-millisecond per
// provisioned GB (cloud/faas). The single-instance model is the paper's
// classic path: boot, download + load the index from S3, align, hourly
// per-second billing (cloud/cost).
#pragma once

#include <vector>

#include "cloud/faas.h"
#include "cloud/instance_types.h"
#include "core/cloud_context.h"
#include "core/stage_model.h"

namespace staratlas {

struct ScatterGatherQuery {
  /// Index size / release / stage model — shared with rightsizing and
  /// the campaign planner (load path is moot: FaaS workers always mmap).
  CloudContext cloud{};
  ByteSize sample_fastq;
  usize num_workers = 32;
  FaasClass worker;
  /// Fraction of index pages a worker faults in from the shared FS while
  /// aligning its slice (suffix-array walks touch hot regions, not the
  /// whole file; the full download the single instance pays is avoided).
  double index_touch_fraction = 0.3;
  /// Gather function: download shard outputs + merge, per sample GiB.
  double gather_secs_per_gib = 3.0;
  /// Engine working set a worker needs beyond the evictable mmap'd index
  /// pages (streaming ingest is queue-bounded, not sample-bounded).
  ByteSize worker_headroom = ByteSize::from_gib(2.0);
};

struct ScatterGatherResult {
  bool feasible = false;  ///< worker memory >= engine working-set headroom
  usize workers = 0;
  VirtualDuration cold_start;  ///< per worker
  VirtualDuration attach;      ///< index mmap attach + first-touch paging
  VirtualDuration worker_align;
  VirtualDuration gather;
  VirtualDuration makespan;  ///< invoke -> gather complete (event sim)
  double cost_usd = 0.0;     ///< N worker invocations + gather invocation
  u64 sim_events = 0;
};

ScatterGatherResult simulate_scatter_gather(const ScatterGatherQuery& query);

struct SingleInstanceQuery {
  /// Index size / release / load path / stage model — shared with
  /// rightsizing and the campaign planner.
  CloudContext cloud{};
  ByteSize sample_fastq;
  InstanceType instance;
  double boot_seconds = 45.0;  ///< EC2 launch to usable
  bool spot = false;
};

struct SingleInstanceResult {
  bool feasible = false;  ///< memory >= required_memory(index)
  VirtualDuration boot_and_init;
  VirtualDuration makespan;
  double cost_usd = 0.0;  ///< per-second instance billing over makespan
};

SingleInstanceResult simulate_single_instance(const SingleInstanceQuery& query);

}  // namespace staratlas
