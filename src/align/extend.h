// Seed stitching and extension: turns seed occurrences into scored,
// possibly spliced, candidate alignments.
//
// Mirrors STAR's architecture: seed loci are grouped into genomic windows
// (diagonal clustering bounded by the intron cap), each window's seeds are
// stitched by a chaining DP, chain ends are extended with X-drop, and each
// window yields at most one candidate alignment hit. The work performed
// here — loci enumerated, chains computed, bases compared — is exactly
// what makes repetitive (release-108-style) genomes slow, so the counters
// are reported faithfully.
#pragma once

#include <string_view>
#include <vector>

#include "align/params.h"
#include "align/record.h"
#include "align/seed.h"
#include "index/genome_index.h"

namespace staratlas {

struct ExtendStats {
  u64 windows_scored = 0;
  u64 bases_compared = 0;
  u64 loci_enumerated = 0;
  bool capped = false;  ///< some seed exceeded anchor_max_loci
};

/// Scores all candidate windows implied by `seeds` for `read` (already
/// orientation-resolved). Returns one hit per window with score > 0.
std::vector<AlignmentHit> score_windows(const GenomeIndex& index,
                                        std::string_view read,
                                        const std::vector<Seed>& seeds,
                                        bool reverse,
                                        const AlignerParams& params,
                                        ExtendStats& stats);

}  // namespace staratlas
