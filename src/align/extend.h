// Seed stitching and extension: turns seed occurrences into scored,
// possibly spliced, candidate alignments.
//
// Mirrors STAR's architecture: seed loci are grouped into genomic windows
// (diagonal clustering bounded by the intron cap), each window's seeds are
// stitched by a chaining DP, chain ends are extended with X-drop, and each
// window yields at most one candidate alignment hit. The work performed
// here — loci enumerated, chains computed, bases compared — is exactly
// what makes repetitive (release-108-style) genomes slow, so the counters
// are reported faithfully.
#pragma once

#include <string_view>
#include <vector>

#include "align/params.h"
#include "align/record.h"
#include "align/seed.h"
#include "common/simd.h"
#include "index/genome_index.h"

namespace staratlas {

/// X-drop scan kernels (the inner loop of seed end extension), exposed so
/// the scalar/SIMD parity fuzz test can drive every compiled variant
/// explicitly; the aligner itself binds the dispatched pick once.
namespace xdrop_kernels {

/// Result of one whole X-drop scan with +1/-2 scoring.
struct ScanResult {
  u64 best_matched = 0;  ///< matched bases within the best-scoring prefix
  u64 best_len = 0;      ///< length of the best-scoring prefix
  u64 compared = 0;      ///< bases examined == scan length at exit
};

/// Forward kernels compare q[0..limit) against t[0..limit); backward
/// kernels compare q[-1], q[-2], ... against t[-1], t[-2], ... for up to
/// `limit` bases. All variants of a direction return identical results —
/// with +1/-2 scoring the score rises monotonically inside a match run, so
/// the x-drop break can only trigger at a mismatch and intermediate
/// best-prefix updates (per SIMD strip instead of per run) are always
/// superseded at the true run end.
using ScanFn = ScanResult (*)(const char* q, const char* t, u64 limit,
                              int xdrop);

/// Kernel compiled for `level`, or null when this build lacks it (non-x86
/// builds only compile the scalar reference).
ScanFn fwd_kernel(SimdLevel level);
ScanFn bwd_kernel(SimdLevel level);

}  // namespace xdrop_kernels

struct ExtendStats {
  u64 windows_scored = 0;
  u64 bases_compared = 0;
  u64 loci_enumerated = 0;
  bool capped = false;  ///< some seed exceeded anchor_max_loci
};

/// One end-extension job for the striped multi-window driver. score_windows
/// records two per window (left of the first chained seed, right of the
/// last), then a single driver pass extends every window of the read a
/// 32-base strip at a time, round-robin, so the text loads of several
/// genomic windows are in flight at once instead of one window stalling
/// the pipeline at a time. Results are identical to running the per-window
/// X-drop kernels back to back (same +1/-2 monotone-run argument as the
/// SIMD scan kernels).
struct ScanTask {
  u64 read_pos = 0;   ///< read anchor; exclusive when scanning backward
  u64 text_pos = 0;   ///< text anchor; exclusive when scanning backward
  u64 limit = 0;      ///< max scan length (min of read/text headroom)
  bool fwd = true;    ///< scan direction
  bool done = false;  ///< x-drop break fired; skip the tail pass
  // Live scan state (resumed strip after strip by the driver).
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  // Outputs, valid once the driver finishes.
  u64 best_matched = 0;  ///< matched bases within the best-scoring prefix
  u64 best_len = 0;      ///< length of the best-scoring prefix
  u64 compared = 0;      ///< bases examined
};

/// Deferred per-window assembly: what Phase A (chain + gap compares)
/// computed, waiting for Phase B (the striped driver) to finish both
/// extension tasks so Phase C can apply them and emit the hit.
struct WindowPlan {
  u64 matched = 0;   ///< chained seed bases + interior gap matches
  u32 seg_begin = 0; ///< [seg_begin, seg_end) into ws.plan_segments
  u32 seg_end = 0;
  u32 left_task = 0;   ///< index into ws.tasks (backward extension)
  u32 right_task = 0;  ///< index into ws.tasks (forward extension)
};

/// One genomic occurrence of a seed, the unit the window clustering and
/// chaining DP operate on.
struct SeedLocus {
  u64 read_offset = 0;
  u64 length = 0;
  GenomePos text_start = 0;
  ContigId contig = 0;

  i64 diagonal() const {
    return static_cast<i64>(text_start) - static_cast<i64>(read_offset);
  }
  u64 read_end() const { return read_offset + length; }
  GenomePos text_end() const { return text_start + length; }
};

/// Scratch buffers for score_windows: locus enumeration, per-window slices,
/// the chaining DP bands, and segment assembly. Owned by AlignWorkspace and
/// reused read after read, so the steady state allocates nothing.
struct ExtendWorkspace {
  std::vector<SeedLocus> loci;
  std::vector<SeedLocus> window;
  std::vector<u64> chain_score;   ///< DP: best chain score ending at i
  std::vector<i64> chain_prev;    ///< DP: predecessor of i (-1 = none)
  std::vector<usize> chain;       ///< backtracked best chain, ascending
  std::vector<AlignedSegment> segments;  ///< pre-merge segment assembly
  // Striped extension driver state, spanning all windows of one read.
  std::vector<WindowPlan> plans;
  std::vector<AlignedSegment> plan_segments;  ///< all plans' segments
  std::vector<ScanTask> tasks;   ///< two extension tasks per plan
  std::vector<u32> live;         ///< driver round-robin scratch
  std::vector<u64> read_codes;   ///< packed read (packed-text mode)
  std::vector<u64> read_exc;     ///< packed read overlay bits
};

/// Scores all candidate windows implied by `seeds` for `read` (already
/// orientation-resolved), appending one hit per window with score > 0 to
/// `hits`. Hot-path interface: all scratch comes from `ws`, so warmed
/// buffers make this allocation-free except when a hit spills its inline
/// segment storage.
void score_windows(const GenomeIndex& index, std::string_view read,
                   const std::vector<Seed>& seeds, bool reverse,
                   const AlignerParams& params, ExtendStats& stats,
                   ExtendWorkspace& ws, std::vector<AlignmentHit>& hits);

/// Convenience form returning a fresh hit vector (allocates; tests/tools).
std::vector<AlignmentHit> score_windows(const GenomeIndex& index,
                                        std::string_view read,
                                        const std::vector<Seed>& seeds,
                                        bool reverse,
                                        const AlignerParams& params,
                                        ExtendStats& stats);

}  // namespace staratlas
