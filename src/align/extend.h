// Seed stitching and extension: turns seed occurrences into scored,
// possibly spliced, candidate alignments.
//
// Mirrors STAR's architecture: seed loci are grouped into genomic windows
// (diagonal clustering bounded by the intron cap), each window's seeds are
// stitched by a chaining DP, chain ends are extended with X-drop, and each
// window yields at most one candidate alignment hit. The work performed
// here — loci enumerated, chains computed, bases compared — is exactly
// what makes repetitive (release-108-style) genomes slow, so the counters
// are reported faithfully.
#pragma once

#include <string_view>
#include <vector>

#include "align/params.h"
#include "align/record.h"
#include "align/seed.h"
#include "index/genome_index.h"

namespace staratlas {

struct ExtendStats {
  u64 windows_scored = 0;
  u64 bases_compared = 0;
  u64 loci_enumerated = 0;
  bool capped = false;  ///< some seed exceeded anchor_max_loci
};

/// One genomic occurrence of a seed, the unit the window clustering and
/// chaining DP operate on.
struct SeedLocus {
  u64 read_offset = 0;
  u64 length = 0;
  GenomePos text_start = 0;
  ContigId contig = 0;

  i64 diagonal() const {
    return static_cast<i64>(text_start) - static_cast<i64>(read_offset);
  }
  u64 read_end() const { return read_offset + length; }
  GenomePos text_end() const { return text_start + length; }
};

/// Scratch buffers for score_windows: locus enumeration, per-window slices,
/// the chaining DP bands, and segment assembly. Owned by AlignWorkspace and
/// reused read after read, so the steady state allocates nothing.
struct ExtendWorkspace {
  std::vector<SeedLocus> loci;
  std::vector<SeedLocus> window;
  std::vector<u64> chain_score;   ///< DP: best chain score ending at i
  std::vector<i64> chain_prev;    ///< DP: predecessor of i (-1 = none)
  std::vector<usize> chain;       ///< backtracked best chain, ascending
  std::vector<AlignedSegment> segments;  ///< pre-merge segment assembly
};

/// Scores all candidate windows implied by `seeds` for `read` (already
/// orientation-resolved), appending one hit per window with score > 0 to
/// `hits`. Hot-path interface: all scratch comes from `ws`, so warmed
/// buffers make this allocation-free except when a hit spills its inline
/// segment storage.
void score_windows(const GenomeIndex& index, std::string_view read,
                   const std::vector<Seed>& seeds, bool reverse,
                   const AlignerParams& params, ExtendStats& stats,
                   ExtendWorkspace& ws, std::vector<AlignmentHit>& hits);

/// Convenience form returning a fresh hit vector (allocates; tests/tools).
std::vector<AlignmentHit> score_windows(const GenomeIndex& index,
                                        std::string_view read,
                                        const std::vector<Seed>& seeds,
                                        bool reverse,
                                        const AlignerParams& params,
                                        ExtendStats& stats);

}  // namespace staratlas
