// Early stopping for STAR alignment (paper §III.B).
//
// STAR reports the running mapped-read percentage in Log.progress.out.
// The paper's analysis of 1000 runs showed that once 10% of reads are
// processed the final mapping rate is already predictable, so alignments
// whose rate is below the atlas acceptance threshold (30%) can be aborted,
// saving ~19.5% of total STAR compute. The controller below implements
// that rule against our engine's progress stream. (The policy struct and
// pure decision rule live in align/early_stop_policy.h.)
#pragma once

#include "align/early_stop_policy.h"
#include "align/engine.h"
#include "common/types.h"

namespace staratlas {

struct EarlyStopDecision {
  bool evaluated = false;     ///< checkpoint reached
  bool stopped = false;       ///< alignment aborted
  double observed_rate = 0.0; ///< mapped rate at the checkpoint
  double at_fraction = 0.0;   ///< actual fraction processed at decision
  u64 at_reads = 0;
};

/// Attaches the paper's rule to an AlignmentEngine progress stream.
/// One-shot: evaluates at the first snapshot at/after the checkpoint.
class EarlyStopController {
 public:
  explicit EarlyStopController(const EarlyStopPolicy& policy);

  /// The callback to pass to AlignmentEngine::run. The controller must
  /// outlive the run.
  ProgressCallback callback();

  const EarlyStopDecision& decision() const { return decision_; }

 private:
  EarlyStopPolicy policy_;
  EarlyStopDecision decision_;
};

}  // namespace staratlas
