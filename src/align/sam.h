// SAM output (STAR's Aligned.out.sam): header generation, CIGAR
// construction from alignment segments, and record formatting with
// STAR-compatible MAPQ and NH tags.
#pragma once

#include <iosfwd>
#include <string>

#include "align/record.h"
#include "index/genome_index.h"
#include "io/fastq.h"

namespace staratlas {

/// CIGAR for one hit: soft-clipped ends, M runs for aligned segments, N
/// for intron gaps (genomic gap larger than read gap), and the read-gap
/// part of mixed gaps as M-through (mismatch scoring absorbed the bases).
/// `read_length` is the length of the (orientation-resolved) read.
std::string cigar_string(const AlignmentHit& hit, usize read_length);

/// STAR's MAPQ convention: 255 unique, 3 for 2 loci, 1 for 3-4, 0 beyond.
int star_mapq(u32 num_loci);

class SamWriter {
 public:
  /// Writes @HD/@SQ/@PG headers for the index's contigs.
  SamWriter(std::ostream& out, const GenomeIndex& index);

  /// Writes all records for one read: the primary hit first, remaining
  /// hits as secondary (flag 0x100), or one unmapped record (flag 0x4).
  /// Reverse-strand hits store the reverse-complemented sequence and
  /// reversed qualities, per the SAM convention.
  void write_read(const FastqRecord& read, const ReadAlignment& alignment);

  u64 records_written() const { return records_; }

 private:
  void write_record(const FastqRecord& read, const AlignmentHit& hit,
                    const ReadAlignment& alignment, bool secondary);

  std::ostream* out_;
  const GenomeIndex* index_;
  u64 records_ = 0;
};

}  // namespace staratlas
