// Scatter/gather alignment of one sample: N engine workers each align a
// record-snapped byte range of the FASTQ (io/shard_plan) against a shared
// index, and a deterministic gather stage merges the four result
// collectors — MappingStats, GeneCountsTable, splice junctions, and the
// progress/final logs — BYTE-IDENTICALLY to the unsharded run for any
// shard count. This is the in-process form of the follow-up paper's
// serverless STAR split ("Serverless Approach to Running
// Resource-Intensive STAR Aligner"): workers attach the v3 index via
// SharedIndexCache/mmap instead of each downloading and loading it.
//
// The determinism contract (tested shard×thread matrix in
// tests/align/sharded_test.cc):
//   * Outcomes, stats, gene counts and junctions are associative sums, so
//     any partition merges exactly.
//   * Progress-log identity needs checkpoint-aligned batching: batches
//     never straddle a GLOBAL checkpoint boundary (a multiple of the
//     resolved progress_check_interval), so the unsharded stream commits
//     a row at exactly every boundary, and each shard — whose absolute
//     read offset is known from the plan — records a snapshot at exactly
//     the boundaries falling inside its range. The gather stage prefixes
//     each shard snapshot with the full stats of all earlier shards,
//     which equals the unsharded cumulative counters at that boundary.
//   * Rendered logs carry no timestamps; the final log's "Mapping speed"
//     row depends on wall_seconds, which callers pin (e.g. to 0) when
//     byte-comparing runs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "align/engine.h"
#include "index/shared_cache.h"
#include "io/shard_plan.h"

namespace staratlas {

struct ShardedConfig {
  /// Per-worker engine configuration. `num_threads` is threads PER SHARD
  /// (total concurrency = num_shards x num_threads);
  /// `progress_check_interval` is the GLOBAL checkpoint interval of the
  /// merged log (0 = total_reads / 50, like the engine's default).
  EngineConfig engine;
  usize num_shards = 1;
  /// Max reads per streamed batch; batches are additionally capped at
  /// global checkpoint boundaries (see determinism contract above).
  usize batch_reads = 256;
};

struct ShardedRun {
  ShardPlan plan;
  /// The gathered result, shaped exactly like the unsharded
  /// AlignmentEngine::run_stream result over the whole file.
  AlignmentRun merged;
  /// Per-shard runs (shard-local stats, progress with the SHARD's read
  /// count as denominator, junctions). Outcomes are moved into `merged`.
  std::vector<AlignmentRun> shard_runs;
  u64 global_check_interval = 0;
  double wall_seconds = 0.0;  ///< scatter + gather wall time
};

/// Supplies shard `s` with its index attachment (a SharedIndexCache
/// acquire, an mmap load, or a borrowed in-memory index). Called once per
/// shard, possibly concurrently; the returned pointer is held for the
/// worker's lifetime.
using ShardIndexProvider =
    std::function<std::shared_ptr<const GenomeIndex>(usize shard)>;

/// Scatter/gather alignment of `fastq` (whole sample in memory — an
/// mmap'd file or decoded container). Workers run concurrently, one
/// std::thread per shard, each with its own engine; the gather stage is
/// sequential and deterministic. Throws if any worker throws. The merged
/// result is byte-identical (rendered gene counts TSV, junctions TSV,
/// progress log, final log with pinned wall time) to
/// align_unsharded_reference for every shard/thread count.
ShardedRun align_sharded(std::string_view fastq,
                         const ShardIndexProvider& provider,
                         const Annotation* annotation,
                         const ShardedConfig& config);

/// Convenience overload: every shard borrows the same in-process index.
ShardedRun align_sharded(std::string_view fastq, const GenomeIndex& index,
                         const Annotation* annotation,
                         const ShardedConfig& config);

/// Cache-attach overload: every shard acquires `key` from `cache`
/// (single-flight: one loader call, the rest are hits — the analog of N
/// FaaS workers attaching one shared v3 index).
ShardedRun align_sharded(std::string_view fastq, SharedIndexCache& cache,
                         const std::string& key,
                         const SharedIndexCache::Loader& loader,
                         const Annotation* annotation,
                         const ShardedConfig& config);

/// The unsharded baseline the gather output is compared against: one
/// engine streaming the whole file with the same checkpoint-aligned
/// batching and the same resolved global interval.
AlignmentRun align_unsharded_reference(std::string_view fastq,
                                       const GenomeIndex& index,
                                       const Annotation* annotation,
                                       const ShardedConfig& config);

/// Log.final.out of the gathered run (render_final_log over the merged
/// result with the plan's total read count).
std::string render_sharded_final_log(const ShardedRun& run,
                                     double mean_read_length);

}  // namespace staratlas
