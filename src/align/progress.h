// Alignment progress telemetry — the staratlas equivalent of STAR's
// Log.progress.out, which the paper's early-stopping optimization parses.
//
// ProgressTracker is the thread-safe counter the engine updates;
// ProgressLog renders snapshots into a STAR-style progress table.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "align/record.h"
#include "common/types.h"

namespace staratlas {

struct ProgressSnapshot {
  u64 total_reads = 0;
  u64 processed = 0;
  u64 unique = 0;
  u64 multi = 0;
  u64 too_many = 0;
  u64 unmapped = 0;
  double elapsed_seconds = 0.0;

  double fraction_processed() const {
    return total_reads == 0
               ? 0.0
               : static_cast<double>(processed) / static_cast<double>(total_reads);
  }
  /// Mapping rate as STAR reports it: unique + multi over processed.
  double mapped_rate() const {
    return processed == 0 ? 0.0
                          : static_cast<double>(unique + multi) /
                                static_cast<double>(processed);
  }
};

class ProgressTracker {
 public:
  explicit ProgressTracker(u64 total_reads) : total_reads_(total_reads) {}

  /// Adds a completed chunk's outcome counts.
  void add(const MappingStats& chunk);

  /// Reads processed so far. Lock-free; the engine's progress checkpoint
  /// uses this to skip the merge lock off checkpoint boundaries.
  u64 processed() const { return processed_.load(std::memory_order_relaxed); }

  ProgressSnapshot snapshot(double elapsed_seconds = 0.0) const;

 private:
  u64 total_reads_;
  std::atomic<u64> processed_{0};
  std::atomic<u64> unique_{0};
  std::atomic<u64> multi_{0};
  std::atomic<u64> too_many_{0};
  std::atomic<u64> unmapped_{0};
};

/// Accumulates snapshots and renders a Log.progress.out-style table.
class ProgressLog {
 public:
  void append(const ProgressSnapshot& snapshot);
  const std::vector<ProgressSnapshot>& entries() const { return entries_; }

  /// STAR-flavored text: header plus one row per snapshot with the
  /// processed-read count, % complete, and % mapped.
  std::string render() const;

 private:
  std::vector<ProgressSnapshot> entries_;
};

}  // namespace staratlas
