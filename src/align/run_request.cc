#include "align/run_request.h"

#include <algorithm>
#include <optional>

#include "align/sharded.h"
#include "common/error.h"
#include "io/fastq_block.h"

namespace staratlas {

const char* to_string(EngineRunRequest::Mode mode) {
  switch (mode) {
    case EngineRunRequest::Mode::kAuto: return "auto";
    case EngineRunRequest::Mode::kMemory: return "memory";
    case EngineRunRequest::Mode::kStream: return "stream";
    case EngineRunRequest::Mode::kSharded: return "sharded";
  }
  return "unknown";
}

EngineRunRequest::Mode EngineRunRequest::resolved_mode() const {
  if (mode != Mode::kAuto) return mode;
  if (num_shards > 1) return Mode::kSharded;
  if (batches || !fastq_text.empty()) return Mode::kStream;
  return Mode::kMemory;
}

void EngineRunRequest::validate() const {
  const int sources = (reads != nullptr ? 1 : 0) + (batches ? 1 : 0) +
                      (!fastq_text.empty() ? 1 : 0);
  if (sources == 0) {
    throw InvalidArgument(
        "run request has no input: set reads, batches, or fastq_text");
  }
  if (sources > 1) {
    throw InvalidArgument(
        "run request has multiple inputs: set exactly one of reads, "
        "batches, fastq_text");
  }
  if (num_shards < 1) {
    throw InvalidArgument("run request needs num_shards >= 1");
  }
  if (batch_reads < 1) {
    throw InvalidArgument("run request needs batch_reads >= 1");
  }

  const Mode resolved = resolved_mode();
  switch (resolved) {
    case Mode::kMemory:
      if (reads == nullptr) {
        throw InvalidArgument("memory mode requires an in-memory ReadSet");
      }
      break;
    case Mode::kStream:
      // Any source streams: a BatchSource is pulled directly, fastq_text
      // is block-parsed, and a ReadSet is batched internally.
      break;
    case Mode::kSharded:
      if (fastq_text.empty()) {
        throw InvalidArgument(
            "sharded mode requires fastq_text (raw FASTQ bytes)");
      }
      break;
    case Mode::kAuto:
      break;  // unreachable: resolved_mode never returns kAuto
  }
  if (num_shards > 1 && resolved != Mode::kSharded) {
    throw InvalidArgument("num_shards > 1 requires sharded mode (fastq_text)");
  }
  if (early_stop.enabled) {
    early_stop.validate();
    if (resolved == Mode::kSharded) {
      // The scatter/gather layer has no cross-shard abort protocol; the
      // CLI used to enforce this, now every caller gets it.
      throw InvalidArgument(
          "early stopping cannot be combined with sharded alignment");
    }
  }
  if (sharded_out != nullptr && resolved != Mode::kSharded) {
    throw InvalidArgument("sharded_out is only produced by sharded mode");
  }
}

AlignmentRun AlignmentEngine::execute(const EngineRunRequest& request) {
  request.validate();
  const EngineRunRequest::Mode mode = request.resolved_mode();

  // Chain the caller's callback with the engine-owned early-stop
  // controller; the user callback sees every snapshot first and an abort
  // from either side wins.
  std::optional<EarlyStopController> controller;
  ProgressCallback callback = request.callback;
  if (request.early_stop.enabled) {
    controller.emplace(request.early_stop);
    const ProgressCallback user = request.callback;
    const ProgressCallback stop_cb = controller->callback();
    callback = [user, stop_cb](const ProgressSnapshot& snapshot) {
      EngineCommand command = EngineCommand::kContinue;
      if (user && user(snapshot) == EngineCommand::kAbort) {
        command = EngineCommand::kAbort;
      }
      if (stop_cb(snapshot) == EngineCommand::kAbort) {
        command = EngineCommand::kAbort;
      }
      return command;
    };
  }

  AlignmentRun run;
  switch (mode) {
    case EngineRunRequest::Mode::kMemory:
      run = run_memory(*request.reads, callback);
      break;
    case EngineRunRequest::Mode::kStream: {
      if (request.batches) {
        run = run_streaming(request.batches, request.total_reads_hint,
                            callback);
      } else if (request.reads != nullptr) {
        const ReadSet& reads = *request.reads;
        usize next = 0;
        const usize batch_size = request.batch_reads;
        const BatchSource source = [&reads, &next,
                                    batch_size](ReadBatch& batch) {
          if (next >= reads.size()) return false;
          const usize end = std::min(next + batch_size, reads.size());
          for (; next < end; ++next) {
            const FastqRecord& rec = reads.reads[next];
            batch.append(rec.name, rec.sequence, rec.quality);
          }
          return true;
        };
        run = run_streaming(source, reads.size(), callback);
      } else {
        FastqBlockReader reader(request.fastq_text);
        const usize batch_size = request.batch_reads;
        const BatchSource source = [&reader, batch_size](ReadBatch& batch) {
          return reader.read_batch(batch, batch_size) > 0;
        };
        run = run_streaming(source, request.total_reads_hint, callback);
      }
      break;
    }
    case EngineRunRequest::Mode::kSharded: {
      ShardedConfig sharded_config;
      sharded_config.engine = config_;
      sharded_config.num_shards = request.num_shards;
      sharded_config.batch_reads = request.batch_reads;
      ShardedRun sharded = align_sharded(request.fastq_text, *index_,
                                         annotation_, sharded_config);
      run = std::move(sharded.merged);
      if (request.sharded_out != nullptr) {
        // The merged result is execute()'s return value; sharded_out
        // receives the plan and per-shard runs (merged left empty).
        sharded.merged = AlignmentRun{};
        *request.sharded_out = std::move(sharded);
      }
      break;
    }
    case EngineRunRequest::Mode::kAuto:
      STARATLAS_CHECK(false);  // resolved_mode never returns kAuto
  }
  if (request.early_stop_out != nullptr) {
    *request.early_stop_out = controller.has_value() ? controller->decision()
                                                     : EarlyStopDecision{};
  }
  return run;
}

// --- Legacy entrypoints: thin wrappers over execute() ----------------

AlignmentRun AlignmentEngine::run(const ReadSet& reads,
                                  const ProgressCallback& callback) {
  EngineRunRequest request;
  request.reads = &reads;
  request.mode = EngineRunRequest::Mode::kMemory;
  request.callback = callback;
  return execute(request);
}

AlignmentRun AlignmentEngine::run_stream(const BatchSource& source,
                                         u64 total_reads_hint,
                                         const ProgressCallback& callback) {
  EngineRunRequest request;
  request.batches = source;
  request.mode = EngineRunRequest::Mode::kStream;
  request.total_reads_hint = total_reads_hint;
  request.callback = callback;
  return execute(request);
}

AlignmentRun AlignmentEngine::run_stream_reads(const ReadSet& reads,
                                               usize batch_size,
                                               const ProgressCallback& callback) {
  EngineRunRequest request;
  request.reads = &reads;
  request.mode = EngineRunRequest::Mode::kStream;
  request.batch_reads = batch_size;
  request.callback = callback;
  return execute(request);
}

}  // namespace staratlas
