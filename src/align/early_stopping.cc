#include "align/early_stopping.h"

#include "common/error.h"

namespace staratlas {

void EarlyStopPolicy::validate() const {
  if (checkpoint_fraction <= 0.0 || checkpoint_fraction >= 1.0) {
    throw InvalidArgument("early-stop checkpoint fraction must be in (0,1)");
  }
  if (min_mapped_rate < 0.0 || min_mapped_rate > 1.0) {
    throw InvalidArgument("early-stop mapping-rate threshold must be in [0,1]");
  }
}

bool early_stop_decision(const EarlyStopPolicy& policy, double observed_rate) {
  return policy.enabled && observed_rate < policy.min_mapped_rate;
}

EarlyStopController::EarlyStopController(const EarlyStopPolicy& policy)
    : policy_(policy) {
  policy_.validate();
}

ProgressCallback EarlyStopController::callback() {
  return [this](const ProgressSnapshot& snapshot) {
    if (!policy_.enabled || decision_.evaluated) {
      return EngineCommand::kContinue;
    }
    if (snapshot.fraction_processed() < policy_.checkpoint_fraction) {
      return EngineCommand::kContinue;
    }
    decision_.evaluated = true;
    decision_.observed_rate = snapshot.mapped_rate();
    decision_.at_fraction = snapshot.fraction_processed();
    decision_.at_reads = snapshot.processed;
    decision_.stopped = early_stop_decision(policy_, decision_.observed_rate);
    return decision_.stopped ? EngineCommand::kAbort : EngineCommand::kContinue;
  };
}

}  // namespace staratlas
