#include "align/junctions.h"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "common/error.h"

namespace staratlas {

u64 left_shift_intron(std::string_view contig_seq, u64 start, u64 end) {
  STARATLAS_CHECK(start < end && end <= contig_seq.size());
  while (start > 0 && contig_seq[start - 1] == contig_seq[end - 1]) {
    --start;
    --end;
  }
  return start;
}

JunctionCollector::JunctionCollector(const GenomeIndex& index, u64 min_intron)
    : index_(&index), min_intron_(min_intron) {}

void JunctionCollector::add(const ReadAlignment& alignment) {
  if (alignment.hits.empty()) return;
  const bool unique = alignment.outcome == ReadOutcome::kUniqueMapped;
  if (!unique && alignment.outcome != ReadOutcome::kMultiMapped) return;

  const AlignmentHit& hit = alignment.hits.front();
  for (usize i = 0; i + 1 < hit.segments.size(); ++i) {
    const AlignedSegment& a = hit.segments[i];
    const AlignedSegment& b = hit.segments[i + 1];
    const u64 read_gap = b.read_start - (a.read_start + a.length);
    const u64 text_gap = b.text_start - (a.text_start + a.length);
    STARATLAS_CHECK(text_gap >= read_gap);
    const u64 intron = text_gap - read_gap;
    if (intron < min_intron_) continue;  // small indel, not a junction

    // The intron begins right after segment a (plus any read-gap bases
    // attributed downstream — the donor side is a's end). Normalize the
    // boundary to its leftmost equivalent position so reads whose match
    // slid into the intron by chance collapse onto one junction.
    const GenomePos donor = a.text_start + a.length;
    const ContigLocus locus = index_->locate(donor);
    const ContigMeta& meta = index_->contigs()[locus.contig];
    // Same normalization as left_shift_intron, but through the index's
    // encoding-agnostic per-char accessor: packed (v4) indexes carry no
    // raw text to take a contig view of, and the shift only ever touches
    // a handful of bases around the boundary.
    u64 start = locus.offset;
    u64 end = locus.offset + intron;
    while (start > 0 &&
           index_->text_char(meta.text_offset + start - 1) ==
               index_->text_char(meta.text_offset + end - 1)) {
      --start;
      --end;
    }
    // Junctions never span contigs (windows are per-contig).
    Key key{locus.contig, start, start + intron};
    Support& support = table_[key];
    if (unique) {
      ++support.unique_reads;
    } else {
      ++support.multi_reads;
    }
    support.max_overhang =
        std::max(support.max_overhang, std::min(a.length, b.length));
  }
}

std::vector<Junction> JunctionCollector::junctions() const {
  std::vector<Junction> result;
  result.reserve(table_.size());
  for (const auto& [key, support] : table_) {
    Junction junction;
    junction.contig = key.contig;
    junction.intron_start = key.start;
    junction.intron_end = key.end;
    junction.unique_reads = support.unique_reads;
    junction.multi_reads = support.multi_reads;
    junction.max_overhang = support.max_overhang;
    result.push_back(junction);
  }
  return result;  // std::map iteration is already sorted by key
}

JunctionCollector& JunctionCollector::operator+=(
    const JunctionCollector& other) {
  // Junction keys are (contig id, text offsets): merging tables built
  // against different genomes silently misaligns contig ids and write_tsv
  // prints the wrong contig names. Same engine-local merges share the
  // index object; cross-process shard merges (separately loaded copies)
  // are allowed through when the content fingerprints agree.
  STARATLAS_CHECK(min_intron_ == other.min_intron_);
  STARATLAS_CHECK(index_ == other.index_ ||
                  index_->fingerprint() == other.index_->fingerprint());
  for (const auto& [key, support] : other.table_) {
    Support& mine = table_[key];
    mine.unique_reads += support.unique_reads;
    mine.multi_reads += support.multi_reads;
    mine.max_overhang = std::max(mine.max_overhang, support.max_overhang);
  }
  return *this;
}

void JunctionCollector::write_tsv(std::ostream& out) const {
  write_junctions_tsv(out, junctions(), *index_);
}

std::vector<Junction> merge_junctions(
    const std::vector<std::vector<Junction>>& parts) {
  std::map<std::tuple<ContigId, u64, u64>, Junction> merged;
  for (const auto& part : parts) {
    for (const Junction& junction : part) {
      auto [it, inserted] = merged.try_emplace(
          {junction.contig, junction.intron_start, junction.intron_end},
          junction);
      if (!inserted) {
        it->second.unique_reads += junction.unique_reads;
        it->second.multi_reads += junction.multi_reads;
        it->second.max_overhang =
            std::max(it->second.max_overhang, junction.max_overhang);
      }
    }
  }
  std::vector<Junction> result;
  result.reserve(merged.size());
  for (const auto& [key, junction] : merged) result.push_back(junction);
  return result;  // map order == (contig, start, end) sort order
}

void write_junctions_tsv(std::ostream& out,
                         const std::vector<Junction>& junctions,
                         const GenomeIndex& index) {
  for (const Junction& junction : junctions) {
    out << index.contigs()[junction.contig].name << '\t'
        << junction.intron_start + 1 << '\t' << junction.intron_end
        << "\t0\t0\t0\t" << junction.unique_reads << '\t'
        << junction.multi_reads << '\t' << junction.max_overhang << '\n';
  }
}

}  // namespace staratlas
