// The early-stopping decision rule (paper §III.B), separated from the
// engine-attached controller so both the alignment engine's run-request
// API and the cloud simulator can carry/evaluate a policy without pulling
// in the engine headers.
#pragma once

#include "common/types.h"

namespace staratlas {

struct EarlyStopPolicy {
  bool enabled = true;
  /// Fraction of reads processed before the one-shot decision (paper: 10%).
  double checkpoint_fraction = 0.10;
  /// Minimum acceptable mapping rate (paper: 30%).
  double min_mapped_rate = 0.30;

  void validate() const;
};

/// Pure decision rule (used by the live controller, the cloud simulator
/// and the campaign estimator): stop iff the policy is enabled and the
/// observed rate at the checkpoint is below the threshold.
bool early_stop_decision(const EarlyStopPolicy& policy, double observed_rate);

}  // namespace staratlas
