#include "align/gene_counts.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "common/error.h"

namespace staratlas {

u64 GeneCountsTable::total_counted() const {
  u64 total = 0;
  for (u64 c : per_gene) total += c;
  return total;
}

GeneCountsTable& GeneCountsTable::operator+=(const GeneCountsTable& other) {
  // Tables built against different annotations must not merge: silently
  // resizing would let a shard counted on another gene set pass and
  // miscount. Equal gene dimension is the annotation-identity proxy.
  STARATLAS_CHECK(per_gene.size() == other.per_gene.size());
  for (usize i = 0; i < other.per_gene.size(); ++i) {
    per_gene[i] += other.per_gene[i];
  }
  n_unmapped += other.n_unmapped;
  n_multimapping += other.n_multimapping;
  n_no_feature += other.n_no_feature;
  n_ambiguous += other.n_ambiguous;
  return *this;
}

void GeneCountsTable::write_tsv(std::ostream& out,
                                const Annotation& annotation) const {
  out << "N_unmapped\t" << n_unmapped << '\n'
      << "N_multimapping\t" << n_multimapping << '\n'
      << "N_noFeature\t" << n_no_feature << '\n'
      << "N_ambiguous\t" << n_ambiguous << '\n';
  for (usize g = 0; g < per_gene.size(); ++g) {
    out << annotation.gene(static_cast<GeneId>(g)).id << '\t' << per_gene[g]
        << '\n';
  }
}

GeneCounter::GeneCounter(const Annotation& annotation, const GenomeIndex& index)
    : index_(&index), num_genes_(annotation.num_genes()) {
  by_contig_.resize(index.contigs().size());
  max_exon_length_.assign(index.contigs().size(), 0);
  for (usize g = 0; g < annotation.num_genes(); ++g) {
    const Gene& gene = annotation.gene(static_cast<GeneId>(g));
    STARATLAS_CHECK(gene.contig < by_contig_.size());
    for (const Exon& exon : gene.exons) {
      by_contig_[gene.contig].push_back(
          {exon.start, exon.end, static_cast<GeneId>(g)});
      max_exon_length_[gene.contig] =
          std::max(max_exon_length_[gene.contig], exon.length());
    }
  }
  for (auto& intervals : by_contig_) {
    std::sort(intervals.begin(), intervals.end(),
              [](const ExonInterval& a, const ExonInterval& b) {
                return a.start < b.start;
              });
  }
}

std::vector<GeneId> GeneCounter::genes_overlapping(ContigId contig, u64 start,
                                                   u64 end) const {
  STARATLAS_CHECK(contig < by_contig_.size());
  const auto& intervals = by_contig_[contig];
  std::vector<GeneId> genes;
  if (intervals.empty() || start >= end) return genes;

  // Exons whose start is in [start - max_len, end): only those can overlap.
  const u64 max_len = max_exon_length_[contig];
  const u64 scan_from = start > max_len ? start - max_len : 0;
  auto it = std::lower_bound(
      intervals.begin(), intervals.end(), scan_from,
      [](const ExonInterval& e, u64 v) { return e.start < v; });
  for (; it != intervals.end() && it->start < end; ++it) {
    if (it->end > start) genes.push_back(it->gene);
  }
  std::sort(genes.begin(), genes.end());
  genes.erase(std::unique(genes.begin(), genes.end()), genes.end());
  return genes;
}

void GeneCounter::count(const ReadAlignment& alignment,
                        GeneCountsTable& table) const {
  if (table.per_gene.size() < num_genes_) table.per_gene.resize(num_genes_, 0);
  switch (alignment.outcome) {
    case ReadOutcome::kUnmapped:
      ++table.n_unmapped;
      return;
    case ReadOutcome::kMultiMapped:
    case ReadOutcome::kTooManyLoci:
      ++table.n_multimapping;
      return;
    case ReadOutcome::kUniqueMapped:
      break;
  }
  STARATLAS_CHECK(!alignment.hits.empty());
  const AlignmentHit& hit = alignment.hits.front();
  std::set<GeneId> overlapped;
  for (const AlignedSegment& segment : hit.segments) {
    const ContigLocus locus = index_->locate(segment.text_start);
    for (GeneId gene :
         genes_overlapping(locus.contig, locus.offset, locus.offset + segment.length)) {
      overlapped.insert(gene);
    }
  }
  if (overlapped.empty()) {
    ++table.n_no_feature;
  } else if (overlapped.size() > 1) {
    ++table.n_ambiguous;
  } else {
    ++table.per_gene[*overlapped.begin()];
  }
}

}  // namespace staratlas
