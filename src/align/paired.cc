#include "align/paired.h"

#include <algorithm>

namespace staratlas {

const char* pair_outcome_name(PairOutcome outcome) {
  switch (outcome) {
    case PairOutcome::kConcordantUnique: return "concordant_unique";
    case PairOutcome::kConcordantMulti: return "concordant_multi";
    case PairOutcome::kDiscordant: return "discordant";
    case PairOutcome::kOneMateMapped: return "one_mate";
    case PairOutcome::kUnmapped: return "unmapped";
  }
  return "?";
}

void PairedStats::add(PairOutcome outcome) {
  ++pairs;
  switch (outcome) {
    case PairOutcome::kConcordantUnique: ++concordant_unique; break;
    case PairOutcome::kConcordantMulti: ++concordant_multi; break;
    case PairOutcome::kDiscordant: ++discordant; break;
    case PairOutcome::kOneMateMapped: ++one_mate; break;
    case PairOutcome::kUnmapped: ++unmapped; break;
  }
}

PairedAlignment PairedAligner::align_pair(std::string_view mate1,
                                          std::string_view mate2,
                                          MappingStats& work) const {
  PairedAlignment result;
  result.mate1 = aligner_.align(mate1, work);
  result.mate2 = aligner_.align(mate2, work);

  const bool mapped1 = !result.mate1.hits.empty();
  const bool mapped2 = !result.mate2.hits.empty();
  if (!mapped1 && !mapped2) {
    result.outcome = PairOutcome::kUnmapped;
    return result;
  }
  if (mapped1 != mapped2) {
    result.outcome = PairOutcome::kOneMateMapped;
    return result;
  }

  // Enumerate concordant combinations: same contig, opposite strands,
  // bounded genomic span.
  struct PairCandidate {
    const AlignmentHit* hit1;
    const AlignmentHit* hit2;
    u32 score;
  };
  std::vector<PairCandidate> candidates;
  const GenomeIndex& index = aligner_.index();
  for (const AlignmentHit& h1 : result.mate1.hits) {
    const ContigLocus l1 = index.locate(h1.text_pos);
    for (const AlignmentHit& h2 : result.mate2.hits) {
      if (h1.reverse == h2.reverse) continue;  // FR orientation required
      const ContigLocus l2 = index.locate(h2.text_pos);
      if (l1.contig != l2.contig) continue;
      const AlignedSegment& tail1 = h1.segments.back();
      const AlignedSegment& tail2 = h2.segments.back();
      const GenomePos end1 = tail1.text_start + tail1.length;
      const GenomePos end2 = tail2.text_start + tail2.length;
      const GenomePos span_start = std::min(h1.text_pos, h2.text_pos);
      const GenomePos span_end = std::max(end1, end2);
      if (span_end - span_start > params_.max_fragment_span) continue;
      candidates.push_back({&h1, &h2, h1.score + h2.score});
    }
  }

  if (candidates.empty()) {
    result.outcome = PairOutcome::kDiscordant;
    return result;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PairCandidate& a, const PairCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.hit1->text_pos < b.hit1->text_pos;
            });
  const u32 best = candidates.front().score;
  result.best_pair_score = best;
  const u32 floor_score =
      best > params_.pair_score_range ? best - params_.pair_score_range : 0;
  u32 num_pairs = 0;
  for (const PairCandidate& candidate : candidates) {
    if (candidate.score >= floor_score) ++num_pairs;
  }
  result.num_pairs = num_pairs;
  result.hit1 = *candidates.front().hit1;
  result.hit2 = *candidates.front().hit2;
  result.outcome = num_pairs == 1 ? PairOutcome::kConcordantUnique
                                  : PairOutcome::kConcordantMulti;
  return result;
}

}  // namespace staratlas
