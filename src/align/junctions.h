// Splice-junction collection — STAR's SJ.out.tab.
//
// Every gap in a spliced alignment whose genomic span exceeds its read
// span by more than a small-indel allowance is a candidate intron; the
// collector tallies unique- and multi-mapper support and the maximum
// spanning overhang per junction.
#pragma once

#include <iosfwd>
#include <map>
#include <string_view>
#include <vector>

#include "align/record.h"
#include "common/types.h"
#include "index/genome_index.h"

namespace staratlas {

/// Left-shifts an intron to its canonical leftmost-equivalent position:
/// (start, end) and (start-1, end-1) describe the same spliced alignment
/// whenever seq[start-1] == seq[end-1]. Returns the normalized start
/// (end shifts by the same amount). This is the same ambiguity STAR's
/// junction database resolves.
u64 left_shift_intron(std::string_view contig_seq, u64 start, u64 end);

struct Junction {
  ContigId contig = 0;
  u64 intron_start = 0;  ///< 0-based first intronic base
  u64 intron_end = 0;    ///< 0-based one past the last intronic base
  u64 unique_reads = 0;
  u64 multi_reads = 0;
  u64 max_overhang = 0;  ///< longest flanking aligned block among supporters

  u64 intron_length() const { return intron_end - intron_start; }
};

class JunctionCollector {
 public:
  /// Gaps shorter than `min_intron` are treated as deletions, not introns
  /// (STAR: alignIntronMin, default 21).
  explicit JunctionCollector(const GenomeIndex& index, u64 min_intron = 21);

  /// Records the junctions of one read's best hit (unique and multi reads
  /// both contribute, to their respective counters, like STAR).
  void add(const ReadAlignment& alignment);

  /// Junctions sorted by (contig, intron_start, intron_end).
  std::vector<Junction> junctions() const;

  /// Merges another collector (for per-thread accumulation). Both
  /// collectors must use the same min_intron and reference the same
  /// genome — the same index object, or (for collectors fed by separate
  /// index loads, e.g. cross-process shards) indexes whose fingerprint()
  /// matches. Violations throw InternalError instead of silently
  /// misaligning contig ids.
  JunctionCollector& operator+=(const JunctionCollector& other);

  /// Drops all tallied junctions (index and min_intron keep). Lets the
  /// streaming engine reuse per-slot collectors across batches.
  void clear() { table_.clear(); }

  /// SJ.out.tab-style TSV: contig, 1-based intron start/end, strand=0,
  /// motif=0, annotated=0, unique count, multi count, max overhang.
  void write_tsv(std::ostream& out) const;

  usize size() const { return table_.size(); }

 private:
  struct Key {
    ContigId contig;
    u64 start;
    u64 end;
    auto operator<=>(const Key&) const = default;
  };
  struct Support {
    u64 unique_reads = 0;
    u64 multi_reads = 0;
    u64 max_overhang = 0;
  };

  const GenomeIndex* index_;
  u64 min_intron_;
  std::map<Key, Support> table_;
};

/// Deterministic k-way merge of already-extracted junction vectors (each
/// sorted by (contig, start, end), as JunctionCollector::junctions()
/// returns them): counts sum, overhangs take the max, output order is the
/// same sorted order regardless of how reads were split into parts. The
/// scatter/gather layer merges shard results through this instead of
/// keeping collectors alive across workers.
std::vector<Junction> merge_junctions(
    const std::vector<std::vector<Junction>>& parts);

/// SJ.out.tab rendering of an extracted junction vector (shared by the
/// collector, the CLI, and the sharded gather stage, so all three emit
/// byte-identical tables).
void write_junctions_tsv(std::ostream& out,
                         const std::vector<Junction>& junctions,
                         const GenomeIndex& index);

}  // namespace staratlas
