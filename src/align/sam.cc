#include "align/sam.h"

#include <ostream>

#include "common/error.h"
#include "index/packed_sequence.h"

namespace staratlas {

std::string cigar_string(const AlignmentHit& hit, usize read_length) {
  STARATLAS_CHECK(!hit.segments.empty());
  std::string cigar;
  auto emit = [&cigar](u64 count, char op) {
    if (count > 0) cigar += std::to_string(count) + op;
  };

  const AlignedSegment& first = hit.segments.front();
  emit(first.read_start, 'S');  // leading soft clip

  for (usize i = 0; i < hit.segments.size(); ++i) {
    const AlignedSegment& segment = hit.segments[i];
    u64 match_run = segment.length;
    // Merge the read-gap portion of a mixed gap into the M run of the
    // following segment (bases were compared during scoring).
    if (i + 1 < hit.segments.size()) {
      const AlignedSegment& next = hit.segments[i + 1];
      const u64 read_gap = next.read_start - (segment.read_start + segment.length);
      const u64 text_gap = next.text_start - (segment.text_start + segment.length);
      STARATLAS_CHECK(text_gap >= read_gap);
      emit(match_run, 'M');
      const u64 intron = text_gap - read_gap;
      if (intron > 0) emit(intron, 'N');
      // The read-gap bases are attributed to the downstream segment's M
      // run; fold them in by rewriting the next segment view via emit of
      // read_gap here as M (kept simple: emit now).
      if (read_gap > 0) emit(read_gap, 'M');
    } else {
      emit(match_run, 'M');
    }
  }
  const AlignedSegment& last = hit.segments.back();
  const u64 tail = read_length - (last.read_start + last.length);
  emit(tail, 'S');  // trailing soft clip
  return cigar;
}

int star_mapq(u32 num_loci) {
  if (num_loci <= 1) return 255;
  if (num_loci == 2) return 3;
  if (num_loci <= 4) return 1;
  return 0;
}

SamWriter::SamWriter(std::ostream& out, const GenomeIndex& index)
    : out_(&out), index_(&index) {
  *out_ << "@HD\tVN:1.6\tSO:unsorted\n";
  for (const ContigMeta& contig : index.contigs()) {
    *out_ << "@SQ\tSN:" << contig.name << "\tLN:" << contig.length << '\n';
  }
  *out_ << "@PG\tID:staratlas\tPN:staratlas\tVN:1.0\n";
}

void SamWriter::write_read(const FastqRecord& read,
                           const ReadAlignment& alignment) {
  if (alignment.hits.empty()) {
    // Unmapped record.
    *out_ << read.name << "\t4\t*\t0\t0\t*\t*\t0\t0\t" << read.sequence << '\t'
          << read.quality << "\tNH:i:0\n";
    ++records_;
    return;
  }
  for (usize i = 0; i < alignment.hits.size(); ++i) {
    write_record(read, alignment.hits[i], alignment, /*secondary=*/i > 0);
  }
}

void SamWriter::write_record(const FastqRecord& read, const AlignmentHit& hit,
                             const ReadAlignment& alignment, bool secondary) {
  const ContigLocus locus = index_->locate(hit.text_pos);
  u32 flag = 0;
  if (hit.reverse) flag |= 0x10;
  if (secondary) flag |= 0x100;

  std::string seq = read.sequence;
  std::string qual = read.quality;
  if (hit.reverse) {
    seq = reverse_complement(seq);
    qual.assign(read.quality.rbegin(), read.quality.rend());
  }

  *out_ << read.name << '\t' << flag << '\t'
        << index_->contigs()[locus.contig].name << '\t' << locus.offset + 1
        << '\t' << star_mapq(alignment.num_loci) << '\t'
        << cigar_string(hit, seq.size()) << "\t*\t0\t0\t" << seq << '\t'
        << qual << "\tNH:i:" << alignment.num_loci
        << "\tAS:i:" << hit.score << '\n';
  ++records_;
}

}  // namespace staratlas
