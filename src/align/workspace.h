// AlignWorkspace: per-thread scratch for the alignment hot path.
//
// One workspace owns every buffer Aligner::align needs — the
// reverse-complement string, the seed list and its offset-dedupe mask, the
// extension/chaining bands, the candidate-hit vector, and a reusable
// per-read result slot. After a few warm-up reads the buffers reach their
// workload's high-water marks and steady-state alignment performs zero
// heap allocations (asserted by tests/align/workspace_alloc_test.cc).
//
// Not thread-safe: one workspace per thread. The AlignmentEngine keeps one
// per worker and reuses them across runs, which is the compute analog of
// STAR's --genomeLoad LoadAndKeep.
#pragma once

#include <string>
#include <vector>

#include "align/extend.h"
#include "align/record.h"
#include "align/seed.h"

namespace staratlas {

struct AlignWorkspace {
  std::string rc;           ///< reverse-complement buffer
  SeedSearchResult seeds;   ///< seed walk output; reused per orientation
  ExtendWorkspace extend;   ///< loci, windows, DP bands, segment assembly
  std::vector<AlignmentHit> hits;  ///< candidate hits, both orientations
  std::vector<u32> hit_order;      ///< sort permutation over `hits`
  ReadAlignment result;     ///< per-read result slot for engine loops
};

}  // namespace staratlas
