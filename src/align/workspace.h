// AlignWorkspace: per-thread scratch for the alignment hot path.
//
// One workspace owns every buffer Aligner::align needs — the
// reverse-complement string, the seed list and its offset-dedupe mask, the
// extension/chaining bands, the candidate-hit vector, and a reusable
// per-read result slot. After a few warm-up reads the buffers reach their
// workload's high-water marks and steady-state alignment performs zero
// heap allocations (asserted by tests/align/workspace_alloc_test.cc).
//
// Not thread-safe: one workspace per thread. The AlignmentEngine keeps one
// per worker and reuses them across runs, which is the compute analog of
// STAR's --genomeLoad LoadAndKeep.
#pragma once

#include <string>
#include <vector>

#include "align/extend.h"
#include "align/record.h"
#include "align/seed.h"

namespace staratlas {

/// Per-batch lanes for Aligner::align_batch. Unlike the per-read buffers
/// above, these hold state for EVERY read of a batch at once: the batched
/// seed phase needs all reads' reverse complements and both orientations'
/// seed results live simultaneously before any read is finished. All
/// vectors reach their high-water marks after a warm-up batch and are
/// reused, so steady-state batches allocate nothing.
struct AlignBatchLanes {
  std::vector<std::string> rc;          ///< reverse complement per read
  std::vector<std::string_view> walks;  ///< 2 per read: forward, rc
  std::vector<SeedSearchResult> seeds;  ///< parallel to `walks`
  SeedBatchScratch scratch;             ///< find_seeds_batch round buffers
  std::vector<std::string_view> views;  ///< engine: the batch's read views
  std::vector<ReadAlignment> results;   ///< engine: per-read result slots
};

struct AlignWorkspace {
  std::string rc;           ///< reverse-complement buffer
  SeedSearchResult seeds;   ///< seed walk output; reused per orientation
  ExtendWorkspace extend;   ///< loci, windows, DP bands, segment assembly
  std::vector<AlignmentHit> hits;  ///< candidate hits, both orientations
  std::vector<u32> hit_order;      ///< sort permutation over `hits`
  ReadAlignment result;     ///< per-read result slot for engine loops
  AlignBatchLanes batch;    ///< align_batch lanes (empty if unused)
};

}  // namespace staratlas
