#include "align/extend.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"

#if defined(STARATLAS_X86_SIMD)
#include <immintrin.h>
#endif

namespace staratlas {

namespace xdrop_kernels {
namespace {

/// Length of the match run in a[0..limit) vs b[0..limit) scanning forward,
/// word-at-a-time. The first differing byte index is found with
/// countr_zero on the XOR of 8-byte windows.
u64 match_run_fwd(const char* a, const char* b, u64 limit) {
  u64 i = 0;
  while (i + sizeof(u64) <= limit) {
    u64 aw;
    u64 bw;
    std::memcpy(&aw, a + i, sizeof(u64));
    std::memcpy(&bw, b + i, sizeof(u64));
    const u64 x = aw ^ bw;
    if (x != 0) return i + static_cast<u64>(std::countr_zero(x)) / 8;
    i += sizeof(u64);
  }
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

/// Length of the match run comparing a[-1], a[-2], ... against b[-1],
/// b[-2], ... (scanning backwards, up to `limit` bases). The highest
/// differing byte of an 8-byte window is the first mismatch in scan order,
/// found with countl_zero.
u64 match_run_bwd(const char* a, const char* b, u64 limit) {
  u64 i = 0;
  while (i + sizeof(u64) <= limit) {
    u64 aw;
    u64 bw;
    std::memcpy(&aw, a - i - sizeof(u64), sizeof(u64));
    std::memcpy(&bw, b - i - sizeof(u64), sizeof(u64));
    const u64 x = aw ^ bw;
    if (x != 0) return i + static_cast<u64>(std::countl_zero(x)) / 8;
    i += sizeof(u64);
  }
  while (i < limit && a[-static_cast<i64>(i) - 1] == b[-static_cast<i64>(i) - 1]) {
    ++i;
  }
  return i;
}

// The X-drop scans process whole match runs instead of single bases. This
// is exact, not approximate: with +1/-2 scoring the score rises
// monotonically inside a run, so the x-drop break can only trigger at a
// mismatch and the best-prefix update only improves at a run's end. Each
// base of a run still counts one unit of bases_compared, so the virtual
// cost model sees identical work. The SIMD variants additionally update
// the best prefix at strip boundaries mid-run; any such update is
// superseded at the true run end with a strictly greater score, so the
// returned result is identical.

/// Scalar reference: the pre-SIMD run loop (u64 word compares, no vector
/// instructions). STARATLAS_FORCE_SCALAR pins dispatch here.
ScanResult scan_fwd_scalar(const char* q, const char* t, u64 limit,
                           int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len < limit) {
    const u64 run = match_run_fwd(q + len, t + len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;  // the mismatching base
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

ScanResult scan_bwd_scalar(const char* q, const char* t, u64 limit,
                           int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len < limit) {
    const u64 run = match_run_bwd(q - len, t - len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

#if defined(STARATLAS_X86_SIMD)
// Vector variants: one compare+movemask builds a per-strip mismatch
// bitmap (32 bases with AVX2, 16 with SSE2), then the whole strip —
// every run and every penalized mismatch in it — is consumed from that
// one register with ctz/clz instead of reloading memory after each
// mismatch. The tail shorter than a strip falls back to the scalar run
// loop, which continues the same scan state, so no out-of-bounds byte is
// ever touched.

ScanResult scan_fwd_sse2(const char* q, const char* t, u64 limit,
                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 16 <= limit) {
    const __m128i qa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + len));
    const __m128i ta =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + len));
    const u32 mm =
        ~static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(qa, ta))) &
        0xFFFFu;
    u32 pos = 0;
    while (pos < 16) {
      const u32 rest = mm >> pos;
      const u32 run =
          rest == 0 ? 16 - pos : static_cast<u32>(__builtin_ctz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;  // run reaches the strip end; reload
      ++r.compared;          // the mismatching base
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_fwd(q + len, t + len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

ScanResult scan_bwd_sse2(const char* q, const char* t, u64 limit,
                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 16 <= limit) {
    const __m128i qa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q - len - 16));
    const __m128i ta =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t - len - 16));
    // Scan order is highest vector byte first; park the 16-bit mismatch
    // mask in the top half so clz counts scan-order matches directly.
    const u32 mm =
        (~static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(qa, ta)))
         & 0xFFFFu)
        << 16;
    u32 pos = 0;
    while (pos < 16) {
      const u32 rest = mm << pos;
      const u32 run =
          rest == 0 ? 16 - pos : static_cast<u32>(__builtin_clz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;
      ++r.compared;
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_bwd(q - len, t - len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

__attribute__((target("avx2"))) ScanResult scan_fwd_avx2(const char* q,
                                                         const char* t,
                                                         u64 limit,
                                                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 32 <= limit) {
    const __m256i qa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + len));
    const __m256i ta =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + len));
    const u32 mm = ~static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(qa, ta)));
    u32 pos = 0;
    while (pos < 32) {
      const u32 rest = mm >> pos;
      const u32 run =
          rest == 0 ? 32 - pos : static_cast<u32>(__builtin_ctz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;
      ++r.compared;
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_fwd(q + len, t + len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

__attribute__((target("avx2"))) ScanResult scan_bwd_avx2(const char* q,
                                                         const char* t,
                                                         u64 limit,
                                                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 32 <= limit) {
    const __m256i qa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q - len - 32));
    const __m256i ta =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t - len - 32));
    const u32 mm = ~static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(qa, ta)));
    u32 pos = 0;
    while (pos < 32) {
      const u32 rest = mm << pos;  // scan order: highest vector byte first
      const u32 run =
          rest == 0 ? 32 - pos : static_cast<u32>(__builtin_clz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;
      ++r.compared;
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_bwd(q - len, t - len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}
#endif  // STARATLAS_X86_SIMD

}  // namespace

ScanFn fwd_kernel(SimdLevel level) {
  switch (level) {
#if defined(STARATLAS_X86_SIMD)
    case SimdLevel::kAvx2:
      return &scan_fwd_avx2;
    case SimdLevel::kSse2:
      return &scan_fwd_sse2;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kSse2:
      return nullptr;
#endif
    case SimdLevel::kScalar:
      break;
  }
  return &scan_fwd_scalar;
}

ScanFn bwd_kernel(SimdLevel level) {
  switch (level) {
#if defined(STARATLAS_X86_SIMD)
    case SimdLevel::kAvx2:
      return &scan_bwd_avx2;
    case SimdLevel::kSse2:
      return &scan_bwd_sse2;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kSse2:
      return nullptr;
#endif
    case SimdLevel::kScalar:
      break;
  }
  return &scan_bwd_scalar;
}

}  // namespace xdrop_kernels

namespace {

// ---------------------------------------------------------------------------
// Striped multi-window extension driver.
//
// The old path ran one X-drop kernel per window end, to completion, before
// touching the next window: every window paid its own text-fetch latency
// serially. The driver below instead records all of a read's extension
// tasks first, then advances them round-robin one 32-base strip at a time,
// prefetching the next task's strip while the current one is consumed —
// several genomic windows' cache misses overlap instead of queuing.
//
// Each strip is one mismatch bitmap (bit i = base i of the strip differs),
// built from whichever representation the index carries:
//   - raw text:    byte compares (scalar SWAR / SSE2 / AVX2 movemask);
//   - packed text: packed_mismatch_mask32 over 2-bit codes + overlay.
// The bitmap is consumed with the same ctz/clz run loop as the scan
// kernels above, so the monotone +1/-2 argument carries over unchanged:
// strip-boundary best updates are superseded at true run ends, the x-drop
// break only fires at mismatches, and per-base `compared` accounting is
// the sum of run lengths plus mismatches either way. Results are therefore
// bit-identical to the per-window kernels (asserted by the parity tests).
// ---------------------------------------------------------------------------

/// 32-byte mismatch bitmap of a[0..32) vs b[0..32), scalar reference:
/// per-word XOR, SWAR zero-byte test, multiply-gather of the byte flags.
u32 strip_mask_scalar(const char* a, const char* b) {
  u32 m = 0;
  for (u32 w = 0; w < 4; ++w) {
    u64 aw;
    u64 bw;
    std::memcpy(&aw, a + w * 8, sizeof(u64));
    std::memcpy(&bw, b + w * 8, sizeof(u64));
    const u64 x = aw ^ bw;
    // High bit of each byte set iff that byte is zero (== bytes match).
    const u64 z = (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
    // Gather the eight flag bits (positions 8k+7) into one byte. The magic
    // constant routes flag k to result bit 56+k with provably no carries
    // (all partial-product bit positions are distinct).
    const u32 eq = static_cast<u32>((z * 0x0002040810204081ULL) >> 56);
    m |= (~eq & 0xFFu) << (w * 8);
  }
  return m;
}

#if defined(STARATLAS_X86_SIMD)
u32 strip_mask_sse2(const char* a, const char* b) {
  const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 16));
  const __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 16));
  const u32 lo = static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(a0, b0)));
  const u32 hi = static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(a1, b1)));
  return ~(lo | (hi << 16));
}

__attribute__((target("avx2"))) u32 strip_mask_avx2(const char* a,
                                                    const char* b) {
  const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return ~static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(av, bv)));
}
#endif  // STARATLAS_X86_SIMD

using StripMaskFn = u32 (*)(const char* a, const char* b);

StripMaskFn strip_kernel() {
#if defined(STARATLAS_X86_SIMD)
  static const StripMaskFn kFn =
      pick_kernel(&strip_mask_scalar, &strip_mask_sse2, &strip_mask_avx2);
#else
  static const StripMaskFn kFn =
      pick_kernel<StripMaskFn>(&strip_mask_scalar, nullptr, nullptr);
#endif
  return kFn;
}

/// Consumes one forward strip (mask bit 0 = first base in scan order).
/// Returns true when the x-drop break fired, ending the task.
bool consume_strip_fwd(ScanTask& t, u32 m, int xdrop) {
  u32 pos = 0;
  while (pos < 32) {
    const u32 rest = m >> pos;
    const u32 run =
        rest == 0 ? 32 - pos : static_cast<u32>(std::countr_zero(rest));
    t.score += static_cast<int>(run);
    t.matched += run;
    t.len += run;
    t.compared += run;
    pos += run;
    if (t.score > t.best_score) {
      t.best_score = t.score;
      t.best_matched = t.matched;
      t.best_len = t.len;
    }
    if (rest == 0) break;
    ++t.compared;  // the mismatching base
    t.score -= 2;
    ++t.len;
    ++pos;
    if (t.score <= t.best_score - xdrop) return true;
  }
  return false;
}

/// Backward twin: the strip covers the 32 bases just before the scan
/// front, so the first base in scan order is mask bit 31 and runs are
/// counted with clz (same orientation trick as the backward scan kernels).
bool consume_strip_bwd(ScanTask& t, u32 m, int xdrop) {
  u32 pos = 0;
  while (pos < 32) {
    const u32 rest = m << pos;
    const u32 run =
        rest == 0 ? 32 - pos : static_cast<u32>(std::countl_zero(rest));
    t.score += static_cast<int>(run);
    t.matched += run;
    t.len += run;
    t.compared += run;
    pos += run;
    if (t.score > t.best_score) {
      t.best_score = t.score;
      t.best_matched = t.matched;
      t.best_len = t.len;
    }
    if (rest == 0) break;
    ++t.compared;
    t.score -= 2;
    ++t.len;
    ++pos;
    if (t.score <= t.best_score - xdrop) return true;
  }
  return false;
}

/// All read/text context one driver pass needs; tasks hold positions only.
struct StripedDriver {
  std::string_view read;
  std::string_view text;   ///< raw text bytes; empty when packed
  PackedTextView ptext;    ///< packed view; inactive when raw
  const u64* qcodes = nullptr;  ///< packed read codes (packed mode)
  const u64* qexc = nullptr;    ///< packed read overlay bits
  bool packed = false;     ///< text is 2-bit packed
  bool qpacked = false;    ///< read packed successfully (ACGTN only)
  int xdrop = 0;

  char text_at(u64 pos) const { return packed ? ptext.at(pos) : text[pos]; }

  /// Strips need both a wide text window and a wide read window; a read
  /// that failed to pack (rare non-ACGTN chars) falls back to the exact
  /// per-base decode loop for the whole task.
  bool can_strip() const { return !packed || qpacked; }

  u32 strip_mask(const ScanTask& t) const {
    const u64 tp = t.fwd ? t.text_pos + t.len : t.text_pos - t.len - 32;
    const u64 qp = t.fwd ? t.read_pos + t.len : t.read_pos - t.len - 32;
    if (packed) return packed_mismatch_mask32(ptext, tp, qcodes, qexc, qp);
    return strip_kernel()(read.data() + qp, text.data() + tp);
  }

  void prefetch(const ScanTask& t) const {
    const u64 tp = t.fwd ? t.text_pos + t.len : t.text_pos - t.len - 32;
    if (packed) {
      __builtin_prefetch(ptext.codes + (tp >> 5));
    } else {
      __builtin_prefetch(text.data() + tp);
    }
  }

  /// Finishes a task per-base: the sub-strip tail, and whole tasks in
  /// decode mode. Identical outcomes to the run loops — the incremental
  /// best update is superseded exactly like a strip-boundary update.
  void finish_per_base(ScanTask& t) const {
    while (t.len < t.limit) {
      const bool match =
          t.fwd ? read[t.read_pos + t.len] == text_at(t.text_pos + t.len)
                : read[t.read_pos - t.len - 1] ==
                      text_at(t.text_pos - t.len - 1);
      ++t.compared;
      ++t.len;
      if (match) {
        ++t.score;
        ++t.matched;
        if (t.score > t.best_score) {
          t.best_score = t.score;
          t.best_matched = t.matched;
          t.best_len = t.len;
        }
      } else {
        t.score -= 2;
        if (t.score <= t.best_score - xdrop) return;
      }
    }
  }

  /// Runs every task to completion: strip rounds over all live tasks
  /// (one strip per task per round, next task's strip prefetched), then
  /// one per-base pass for tails and x-drop survivors shorter than a
  /// strip. `live` is caller scratch, reused across reads.
  void run(ScanTask* tasks, usize n, std::vector<u32>& live) const {
    live.clear();
    if (can_strip()) {
      for (usize i = 0; i < n; ++i) {
        if (tasks[i].len + 32 <= tasks[i].limit) {
          live.push_back(static_cast<u32>(i));
        }
      }
      while (!live.empty()) {
        usize out = 0;
        for (usize k = 0; k < live.size(); ++k) {
          ScanTask& t = tasks[live[k]];
          if (k + 1 < live.size()) prefetch(tasks[live[k + 1]]);
          const u32 m = strip_mask(t);
          const bool broke = t.fwd ? consume_strip_fwd(t, m, xdrop)
                                   : consume_strip_bwd(t, m, xdrop);
          if (broke) {
            t.done = true;
            continue;
          }
          if (t.len + 32 <= t.limit) live[out++] = live[k];
        }
        live.resize(out);
      }
    }
    for (usize i = 0; i < n; ++i) {
      if (!tasks[i].done) finish_per_base(tasks[i]);
    }
  }
};

/// Chains the window's loci (sorted by read_offset) with the classic
/// O(L^2) DP, maximizing total seed-matched bases under colinearity and
/// the intron cap. Writes the best chain's indices, ascending, into
/// ws.chain; the DP bands live in ws and are reused across windows.
void chain_window(const std::vector<SeedLocus>& loci,
                  const AlignerParams& params, ExtendWorkspace& ws,
                  u64& bases_compared) {
  const usize n = loci.size();
  ws.chain_score.assign(n, 0);
  ws.chain_prev.assign(n, -1);
  // The O(L^2) pair loop below dominates repeat-heavy reads. Work on raw
  // pointers and local accumulators: stores through the workspace members
  // (or the counter reference) may alias the arrays being read, which
  // forces the compiler to reload them every iteration. (A branchless
  // predicated variant was measured ~15-20% slower on repeat-heavy reads:
  // the early-out tests are well predicted, so predication only adds work.)
  const SeedLocus* const lp = loci.data();
  u64* const score = ws.chain_score.data();
  i64* const prev = ws.chain_prev.data();
  const u64 max_intron = params.max_intron;
  u64 compared = 0;
  usize best = 0;
  for (usize i = 0; i < n; ++i) {
    const SeedLocus& b = lp[i];
    u64 best_i = b.length;
    i64 prev_i = -1;
    for (usize j = 0; j < i; ++j) {
      ++compared;  // chaining work is real work
      const SeedLocus& a = lp[j];
      if (a.read_end() > b.read_offset) continue;       // read overlap
      if (a.text_end() > b.text_start) continue;        // genome overlap
      const u64 read_gap = b.read_offset - a.read_end();
      const u64 text_gap = b.text_start - a.text_end();
      if (text_gap < read_gap) continue;                // insertion: skip
      if (text_gap - read_gap > max_intron) continue;
      if (score[j] + b.length > best_i) {
        best_i = score[j] + b.length;
        prev_i = static_cast<i64>(j);
      }
    }
    score[i] = best_i;
    prev[i] = prev_i;
    if (best_i > score[best]) best = i;
  }
  bases_compared += compared;
  ws.chain.clear();
  for (i64 at = static_cast<i64>(best); at >= 0; at = prev[at]) {
    ws.chain.push_back(static_cast<usize>(at));
  }
  std::reverse(ws.chain.begin(), ws.chain.end());
}

}  // namespace

void score_windows(const GenomeIndex& index, std::string_view read,
                   const std::vector<Seed>& seeds, bool reverse,
                   const AlignerParams& params, ExtendStats& stats,
                   ExtendWorkspace& ws, std::vector<AlignmentHit>& hits) {
  const std::string_view text = index.text();
  const u64 tsize = index.text_size();

  StripedDriver driver;
  driver.read = read;
  driver.text = text;
  driver.packed = index.packed_text();
  driver.xdrop = params.xdrop;
  if (driver.packed) {
    driver.ptext = index.packed_view();
    // Pack the read once per call; both orientations and every window's
    // strips reuse the same buffers.
    ws.read_codes.resize(packed_code_words(read.size()));
    ws.read_exc.resize(read.size() / 64 + 2);
    driver.qpacked =
        pack_query(read, ws.read_codes.data(), ws.read_exc.data());
    driver.qcodes = ws.read_codes.data();
    driver.qexc = ws.read_exc.data();
  }

  // 1. Enumerate loci (capped per seed for hyper-repetitive seeds).
  ws.loci.clear();
  for (const Seed& seed : seeds) {
    u32 count = seed.interval.count();
    if (count > params.anchor_max_loci) {
      stats.capped = true;
      count = params.anchor_max_loci;
    }
    for (u32 k = 0; k < count; ++k) {
      const GenomePos pos = index.sa_position(seed.interval.lo + k);
      if (pos < seed.read_offset) continue;  // read would start before text 0
      ws.loci.push_back(
          {seed.read_offset, seed.length, pos, index.locate(pos).contig});
      ++stats.loci_enumerated;
    }
  }
  if (ws.loci.empty()) return;

  // 2. Cluster by (contig, diagonal): alignments can never span contigs
  //    (STAR's windows are likewise per-contig bins), and within a contig
  //    a diagonal gap above the intron cap starts a new genomic window.
  std::sort(ws.loci.begin(), ws.loci.end(),
            [](const SeedLocus& a, const SeedLocus& b) {
              if (a.contig != b.contig) return a.contig < b.contig;
              return a.diagonal() < b.diagonal();
            });

  // Phase A: per window, chain + gap compares + segment assembly; the end
  // extensions are only *recorded* as ScanTasks here.
  ws.plans.clear();
  ws.plan_segments.clear();
  ws.tasks.clear();
  usize window_begin = 0;
  for (usize i = 1; i <= ws.loci.size(); ++i) {
    const bool boundary =
        i == ws.loci.size() || ws.loci[i].contig != ws.loci[i - 1].contig ||
        ws.loci[i].diagonal() - ws.loci[i - 1].diagonal() >
            static_cast<i64>(params.max_intron);
    if (!boundary) continue;

    // Window is loci[window_begin, i).
    ws.window.assign(ws.loci.begin() + static_cast<i64>(window_begin),
                     ws.loci.begin() + static_cast<i64>(i));
    window_begin = i;
    ++stats.windows_scored;

    // Bound the chaining DP on pathological windows (tandem repeats).
    if (ws.window.size() > params.window_loci_cap) {
      ws.window.resize(params.window_loci_cap);
    }
    std::sort(ws.window.begin(), ws.window.end(),
              [](const SeedLocus& a, const SeedLocus& b) {
                if (a.read_offset != b.read_offset) {
                  return a.read_offset < b.read_offset;
                }
                return a.text_start < b.text_start;
              });
    chain_window(ws.window, params, ws, stats.bases_compared);
    if (ws.chain.empty()) continue;
    const std::vector<usize>& chain = ws.chain;
    const std::vector<SeedLocus>& window = ws.window;

    WindowPlan plan;
    plan.seg_begin = static_cast<u32>(ws.plan_segments.size());
    u64 matched = 0;
    for (usize c = 0; c < chain.size(); ++c) {
      const SeedLocus& locus = window[chain[c]];
      matched += locus.length;
      ws.plan_segments.push_back(
          {locus.read_offset, locus.text_start, locus.length});
      if (c == 0) continue;
      const SeedLocus& prior = window[chain[c - 1]];
      const u64 read_gap = locus.read_offset - prior.read_end();
      const u64 text_gap = locus.text_start - prior.text_end();
      if (read_gap == 0) continue;
      // Compare gap bases on the downstream diagonal (attributing the gap
      // to the downstream exon; adequate at our error rates).
      const GenomePos gap_text = locus.text_start - read_gap;
      u64 gap_matched = 0;
      for (u64 g = 0; g < read_gap; ++g) {
        if (read[prior.read_end() + g] == driver.text_at(gap_text + g)) {
          ++gap_matched;
        }
      }
      stats.bases_compared += read_gap;
      matched += gap_matched;
      (void)text_gap;
    }
    plan.seg_end = static_cast<u32>(ws.plan_segments.size());
    plan.matched = matched;

    const SeedLocus& first = window[chain.front()];
    ScanTask left;
    left.read_pos = first.read_offset;
    left.text_pos = first.text_start;
    left.limit = std::min<u64>(first.read_offset, first.text_start);
    left.fwd = false;
    plan.left_task = static_cast<u32>(ws.tasks.size());
    ws.tasks.push_back(left);

    const SeedLocus& last = window[chain.back()];
    ScanTask right;
    right.read_pos = last.read_end();
    right.text_pos = last.text_end();
    right.limit =
        std::min<u64>(read.size() - last.read_end(), tsize - last.text_end());
    right.fwd = true;
    plan.right_task = static_cast<u32>(ws.tasks.size());
    ws.tasks.push_back(right);

    ws.plans.push_back(plan);
  }

  // Phase B: one striped pass extends every window's ends together.
  driver.run(ws.tasks.data(), ws.tasks.size(), ws.live);

  // Phase C: apply extensions and emit hits in original window order, so
  // output and counters match the serial per-window path exactly.
  for (const WindowPlan& plan : ws.plans) {
    const ScanTask& left = ws.tasks[plan.left_task];
    const ScanTask& right = ws.tasks[plan.right_task];
    stats.bases_compared += left.compared + right.compared;
    const u64 matched = plan.matched + left.best_matched + right.best_matched;

    AlignedSegment* segs = ws.plan_segments.data() + plan.seg_begin;
    const usize nseg = plan.seg_end - plan.seg_begin;
    if (left.best_len > 0) {
      segs[0].read_start -= left.best_len;
      segs[0].text_start -= left.best_len;
      segs[0].length += left.best_len;
    }
    if (right.best_len > 0) segs[nseg - 1].length += right.best_len;

    const u32 score = static_cast<u32>(std::min<u64>(matched, read.size()));
    if (score == 0) continue;

    // Merge segments that are contiguous in both read and text (gap filled
    // on the same diagonal) directly into the hit's inline storage.
    AlignmentHit& hit = hits.emplace_back();
    hit.reverse = reverse;
    hit.score = score;
    for (usize s = 0; s < nseg; ++s) {
      const AlignedSegment& segment = segs[s];
      if (!hit.segments.empty()) {
        AlignedSegment& tail = hit.segments.back();
        const u64 read_gap =
            segment.read_start - (tail.read_start + tail.length);
        const u64 text_gap =
            segment.text_start - (tail.text_start + tail.length);
        if (read_gap == text_gap) {
          tail.length = segment.read_start + segment.length - tail.read_start;
          continue;
        }
      }
      hit.segments.push_back(segment);
    }
    hit.text_pos = hit.segments.front().text_start;
  }
}

std::vector<AlignmentHit> score_windows(const GenomeIndex& index,
                                        std::string_view read,
                                        const std::vector<Seed>& seeds,
                                        bool reverse,
                                        const AlignerParams& params,
                                        ExtendStats& stats) {
  ExtendWorkspace ws;
  std::vector<AlignmentHit> hits;
  score_windows(index, read, seeds, reverse, params, stats, ws, hits);
  return hits;
}

}  // namespace staratlas
