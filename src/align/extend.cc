#include "align/extend.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

namespace {

struct SeedLocus {
  u64 read_offset;
  u64 length;
  GenomePos text_start;
  ContigId contig;

  i64 diagonal() const {
    return static_cast<i64>(text_start) - static_cast<i64>(read_offset);
  }
  u64 read_end() const { return read_offset + length; }
  GenomePos text_end() const { return text_start + length; }
};

/// X-drop extension to the left of (read_pos, text_pos), exclusive.
/// Returns (matched_bases, extended_length) of the best extension.
std::pair<u64, u64> extend_left(std::string_view read, std::string_view text,
                                u64 read_pos, GenomePos text_pos, int xdrop,
                                u64& bases_compared) {
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 best_matched = 0;
  u64 len = 0;
  u64 best_len = 0;
  while (read_pos > 0 && text_pos > 0) {
    --read_pos;
    --text_pos;
    ++len;
    ++bases_compared;
    if (read[read_pos] == text[text_pos]) {
      score += 1;
      ++matched;
    } else {
      score -= 2;
    }
    if (score > best_score) {
      best_score = score;
      best_matched = matched;
      best_len = len;
    }
    if (score <= best_score - xdrop) break;
  }
  return {best_matched, best_len};
}

/// X-drop extension to the right starting at (read_pos, text_pos).
std::pair<u64, u64> extend_right(std::string_view read, std::string_view text,
                                 u64 read_pos, GenomePos text_pos, int xdrop,
                                 u64& bases_compared) {
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 best_matched = 0;
  u64 len = 0;
  u64 best_len = 0;
  while (read_pos < read.size() && text_pos < text.size()) {
    ++bases_compared;
    if (read[read_pos] == text[text_pos]) {
      score += 1;
      ++matched;
    } else {
      score -= 2;
    }
    ++read_pos;
    ++text_pos;
    ++len;
    if (score > best_score) {
      best_score = score;
      best_matched = matched;
      best_len = len;
    }
    if (score <= best_score - xdrop) break;
  }
  return {best_matched, best_len};
}

/// Chains the window's loci (sorted by read_offset) with the classic
/// O(L^2) DP, maximizing total seed-matched bases under colinearity and
/// the intron cap. Returns indices of the best chain in ascending order.
std::vector<usize> chain_window(const std::vector<SeedLocus>& loci,
                                const AlignerParams& params,
                                u64& bases_compared) {
  const usize n = loci.size();
  std::vector<u64> dp(n);
  std::vector<i64> prev(n, -1);
  usize best = 0;
  for (usize i = 0; i < n; ++i) {
    dp[i] = loci[i].length;
    for (usize j = 0; j < i; ++j) {
      ++bases_compared;  // chaining work is real work
      const SeedLocus& a = loci[j];
      const SeedLocus& b = loci[i];
      if (a.read_end() > b.read_offset) continue;       // read overlap
      if (a.text_end() > b.text_start) continue;        // genome overlap
      const u64 read_gap = b.read_offset - a.read_end();
      const u64 text_gap = b.text_start - a.text_end();
      if (text_gap < read_gap) continue;                // insertion: skip
      if (text_gap - read_gap > params.max_intron) continue;
      if (dp[j] + b.length > dp[i]) {
        dp[i] = dp[j] + b.length;
        prev[i] = static_cast<i64>(j);
      }
    }
    if (dp[i] > dp[best]) best = i;
  }
  std::vector<usize> chain;
  for (i64 at = static_cast<i64>(best); at >= 0; at = prev[at]) {
    chain.push_back(static_cast<usize>(at));
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

std::vector<AlignmentHit> score_windows(const GenomeIndex& index,
                                        std::string_view read,
                                        const std::vector<Seed>& seeds,
                                        bool reverse,
                                        const AlignerParams& params,
                                        ExtendStats& stats) {
  const std::string_view text = index.text();

  // 1. Enumerate loci (capped per seed for hyper-repetitive seeds).
  std::vector<SeedLocus> loci;
  for (const Seed& seed : seeds) {
    u32 count = seed.interval.count();
    if (count > params.anchor_max_loci) {
      stats.capped = true;
      count = params.anchor_max_loci;
    }
    for (u32 k = 0; k < count; ++k) {
      const GenomePos pos = index.sa_position(seed.interval.lo + k);
      if (pos < seed.read_offset) continue;  // read would start before text 0
      loci.push_back(
          {seed.read_offset, seed.length, pos, index.locate(pos).contig});
      ++stats.loci_enumerated;
    }
  }
  if (loci.empty()) return {};

  // 2. Cluster by (contig, diagonal): alignments can never span contigs
  //    (STAR's windows are likewise per-contig bins), and within a contig
  //    a diagonal gap above the intron cap starts a new genomic window.
  std::sort(loci.begin(), loci.end(), [](const SeedLocus& a, const SeedLocus& b) {
    if (a.contig != b.contig) return a.contig < b.contig;
    return a.diagonal() < b.diagonal();
  });

  std::vector<AlignmentHit> hits;
  usize window_begin = 0;
  for (usize i = 1; i <= loci.size(); ++i) {
    const bool boundary =
        i == loci.size() || loci[i].contig != loci[i - 1].contig ||
        loci[i].diagonal() - loci[i - 1].diagonal() >
            static_cast<i64>(params.max_intron);
    if (!boundary) continue;

    // Window is loci[window_begin, i).
    std::vector<SeedLocus> window(loci.begin() + static_cast<i64>(window_begin),
                                  loci.begin() + static_cast<i64>(i));
    window_begin = i;
    ++stats.windows_scored;

    // Bound the chaining DP on pathological windows (tandem repeats).
    if (window.size() > params.window_loci_cap) {
      window.resize(params.window_loci_cap);
    }
    std::sort(window.begin(), window.end(),
              [](const SeedLocus& a, const SeedLocus& b) {
                if (a.read_offset != b.read_offset) {
                  return a.read_offset < b.read_offset;
                }
                return a.text_start < b.text_start;
              });
    const std::vector<usize> chain =
        chain_window(window, params, stats.bases_compared);
    if (chain.empty()) continue;

    // 3. Score: chained seed bases + interior gap matches + end extensions.
    u64 matched = 0;
    std::vector<AlignedSegment> segments;
    for (usize c = 0; c < chain.size(); ++c) {
      const SeedLocus& locus = window[chain[c]];
      matched += locus.length;
      segments.push_back({locus.read_offset, locus.text_start, locus.length});
      if (c == 0) continue;
      const SeedLocus& prior = window[chain[c - 1]];
      const u64 read_gap = locus.read_offset - prior.read_end();
      const u64 text_gap = locus.text_start - prior.text_end();
      if (read_gap == 0) continue;
      // Compare gap bases on the downstream diagonal (attributing the gap
      // to the downstream exon; adequate at our error rates).
      const GenomePos gap_text = locus.text_start - read_gap;
      for (u64 g = 0; g < read_gap; ++g) {
        ++stats.bases_compared;
        if (read[prior.read_end() + g] == text[gap_text + g]) ++matched;
      }
      (void)text_gap;
    }

    // Left extension from the first chained seed.
    {
      const SeedLocus& first = window[chain.front()];
      const auto [ext_matched, ext_len] =
          extend_left(read, text, first.read_offset, first.text_start,
                      params.xdrop, stats.bases_compared);
      matched += ext_matched;
      if (ext_len > 0) {
        segments.front().read_start -= ext_len;
        segments.front().text_start -= ext_len;
        segments.front().length += ext_len;
      }
    }
    // Right extension from the last chained seed.
    {
      const SeedLocus& last = window[chain.back()];
      const auto [ext_matched, ext_len] =
          extend_right(read, text, last.read_end(), last.text_end(),
                       params.xdrop, stats.bases_compared);
      matched += ext_matched;
      if (ext_len > 0) segments.back().length += ext_len;
    }

    // Merge segments that are contiguous in both read and text (gap filled
    // on the same diagonal).
    std::vector<AlignedSegment> merged;
    for (const auto& segment : segments) {
      if (!merged.empty()) {
        AlignedSegment& tail = merged.back();
        const u64 read_gap = segment.read_start - (tail.read_start + tail.length);
        const u64 text_gap = segment.text_start - (tail.text_start + tail.length);
        if (read_gap == text_gap) {
          tail.length = segment.read_start + segment.length - tail.read_start;
          continue;
        }
      }
      merged.push_back(segment);
    }

    AlignmentHit hit;
    hit.text_pos = merged.front().text_start;
    hit.reverse = reverse;
    hit.score = static_cast<u32>(std::min<u64>(matched, read.size()));
    hit.segments = std::move(merged);
    if (hit.score > 0) hits.push_back(std::move(hit));
  }
  return hits;
}

}  // namespace staratlas
