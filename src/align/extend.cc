#include "align/extend.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"

#if defined(STARATLAS_X86_SIMD)
#include <immintrin.h>
#endif

namespace staratlas {

namespace xdrop_kernels {
namespace {

/// Length of the match run in a[0..limit) vs b[0..limit) scanning forward,
/// word-at-a-time. The first differing byte index is found with
/// countr_zero on the XOR of 8-byte windows.
u64 match_run_fwd(const char* a, const char* b, u64 limit) {
  u64 i = 0;
  while (i + sizeof(u64) <= limit) {
    u64 aw;
    u64 bw;
    std::memcpy(&aw, a + i, sizeof(u64));
    std::memcpy(&bw, b + i, sizeof(u64));
    const u64 x = aw ^ bw;
    if (x != 0) return i + static_cast<u64>(std::countr_zero(x)) / 8;
    i += sizeof(u64);
  }
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

/// Length of the match run comparing a[-1], a[-2], ... against b[-1],
/// b[-2], ... (scanning backwards, up to `limit` bases). The highest
/// differing byte of an 8-byte window is the first mismatch in scan order,
/// found with countl_zero.
u64 match_run_bwd(const char* a, const char* b, u64 limit) {
  u64 i = 0;
  while (i + sizeof(u64) <= limit) {
    u64 aw;
    u64 bw;
    std::memcpy(&aw, a - i - sizeof(u64), sizeof(u64));
    std::memcpy(&bw, b - i - sizeof(u64), sizeof(u64));
    const u64 x = aw ^ bw;
    if (x != 0) return i + static_cast<u64>(std::countl_zero(x)) / 8;
    i += sizeof(u64);
  }
  while (i < limit && a[-static_cast<i64>(i) - 1] == b[-static_cast<i64>(i) - 1]) {
    ++i;
  }
  return i;
}

// The X-drop scans process whole match runs instead of single bases. This
// is exact, not approximate: with +1/-2 scoring the score rises
// monotonically inside a run, so the x-drop break can only trigger at a
// mismatch and the best-prefix update only improves at a run's end. Each
// base of a run still counts one unit of bases_compared, so the virtual
// cost model sees identical work. The SIMD variants additionally update
// the best prefix at strip boundaries mid-run; any such update is
// superseded at the true run end with a strictly greater score, so the
// returned result is identical.

/// Scalar reference: the pre-SIMD run loop (u64 word compares, no vector
/// instructions). STARATLAS_FORCE_SCALAR pins dispatch here.
ScanResult scan_fwd_scalar(const char* q, const char* t, u64 limit,
                           int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len < limit) {
    const u64 run = match_run_fwd(q + len, t + len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;  // the mismatching base
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

ScanResult scan_bwd_scalar(const char* q, const char* t, u64 limit,
                           int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len < limit) {
    const u64 run = match_run_bwd(q - len, t - len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

#if defined(STARATLAS_X86_SIMD)
// Vector variants: one compare+movemask builds a per-strip mismatch
// bitmap (32 bases with AVX2, 16 with SSE2), then the whole strip —
// every run and every penalized mismatch in it — is consumed from that
// one register with ctz/clz instead of reloading memory after each
// mismatch. The tail shorter than a strip falls back to the scalar run
// loop, which continues the same scan state, so no out-of-bounds byte is
// ever touched.

ScanResult scan_fwd_sse2(const char* q, const char* t, u64 limit,
                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 16 <= limit) {
    const __m128i qa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + len));
    const __m128i ta =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + len));
    const u32 mm =
        ~static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(qa, ta))) &
        0xFFFFu;
    u32 pos = 0;
    while (pos < 16) {
      const u32 rest = mm >> pos;
      const u32 run =
          rest == 0 ? 16 - pos : static_cast<u32>(__builtin_ctz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;  // run reaches the strip end; reload
      ++r.compared;          // the mismatching base
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_fwd(q + len, t + len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

ScanResult scan_bwd_sse2(const char* q, const char* t, u64 limit,
                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 16 <= limit) {
    const __m128i qa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q - len - 16));
    const __m128i ta =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t - len - 16));
    // Scan order is highest vector byte first; park the 16-bit mismatch
    // mask in the top half so clz counts scan-order matches directly.
    const u32 mm =
        (~static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(qa, ta)))
         & 0xFFFFu)
        << 16;
    u32 pos = 0;
    while (pos < 16) {
      const u32 rest = mm << pos;
      const u32 run =
          rest == 0 ? 16 - pos : static_cast<u32>(__builtin_clz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;
      ++r.compared;
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_bwd(q - len, t - len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

__attribute__((target("avx2"))) ScanResult scan_fwd_avx2(const char* q,
                                                         const char* t,
                                                         u64 limit,
                                                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 32 <= limit) {
    const __m256i qa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + len));
    const __m256i ta =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + len));
    const u32 mm = ~static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(qa, ta)));
    u32 pos = 0;
    while (pos < 32) {
      const u32 rest = mm >> pos;
      const u32 run =
          rest == 0 ? 32 - pos : static_cast<u32>(__builtin_ctz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;
      ++r.compared;
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_fwd(q + len, t + len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}

__attribute__((target("avx2"))) ScanResult scan_bwd_avx2(const char* q,
                                                         const char* t,
                                                         u64 limit,
                                                         int xdrop) {
  ScanResult r;
  int score = 0;
  int best_score = 0;
  u64 matched = 0;
  u64 len = 0;
  while (len + 32 <= limit) {
    const __m256i qa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q - len - 32));
    const __m256i ta =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t - len - 32));
    const u32 mm = ~static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(qa, ta)));
    u32 pos = 0;
    while (pos < 32) {
      const u32 rest = mm << pos;  // scan order: highest vector byte first
      const u32 run =
          rest == 0 ? 32 - pos : static_cast<u32>(__builtin_clz(rest));
      score += static_cast<int>(run);
      matched += run;
      len += run;
      r.compared += run;
      pos += run;
      if (score > best_score) {
        best_score = score;
        r.best_matched = matched;
        r.best_len = len;
      }
      if (rest == 0) break;
      ++r.compared;
      score -= 2;
      ++len;
      ++pos;
      if (score <= best_score - xdrop) return r;
    }
  }
  while (len < limit) {
    const u64 run = match_run_bwd(q - len, t - len, limit - len);
    score += static_cast<int>(run);
    matched += run;
    len += run;
    r.compared += run;
    if (score > best_score) {
      best_score = score;
      r.best_matched = matched;
      r.best_len = len;
    }
    if (len >= limit) break;
    ++r.compared;
    score -= 2;
    ++len;
    if (score <= best_score - xdrop) break;
  }
  return r;
}
#endif  // STARATLAS_X86_SIMD

}  // namespace

ScanFn fwd_kernel(SimdLevel level) {
  switch (level) {
#if defined(STARATLAS_X86_SIMD)
    case SimdLevel::kAvx2:
      return &scan_fwd_avx2;
    case SimdLevel::kSse2:
      return &scan_fwd_sse2;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kSse2:
      return nullptr;
#endif
    case SimdLevel::kScalar:
      break;
  }
  return &scan_fwd_scalar;
}

ScanFn bwd_kernel(SimdLevel level) {
  switch (level) {
#if defined(STARATLAS_X86_SIMD)
    case SimdLevel::kAvx2:
      return &scan_bwd_avx2;
    case SimdLevel::kSse2:
      return &scan_bwd_sse2;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kSse2:
      return nullptr;
#endif
    case SimdLevel::kScalar:
      break;
  }
  return &scan_bwd_scalar;
}

}  // namespace xdrop_kernels

namespace {

/// X-drop extension to the left of (read_pos, text_pos), exclusive.
/// Returns (matched_bases, extended_length) of the best extension.
std::pair<u64, u64> extend_left(std::string_view read, std::string_view text,
                                u64 read_pos, GenomePos text_pos, int xdrop,
                                u64& bases_compared) {
  static const xdrop_kernels::ScanFn kScan =
      pick_kernel(xdrop_kernels::bwd_kernel(SimdLevel::kScalar),
                  xdrop_kernels::bwd_kernel(SimdLevel::kSse2),
                  xdrop_kernels::bwd_kernel(SimdLevel::kAvx2));
  const u64 limit = std::min<u64>(read_pos, text_pos);
  const xdrop_kernels::ScanResult r =
      kScan(read.data() + read_pos, text.data() + text_pos, limit, xdrop);
  bases_compared += r.compared;
  return {r.best_matched, r.best_len};
}

/// X-drop extension to the right starting at (read_pos, text_pos).
std::pair<u64, u64> extend_right(std::string_view read, std::string_view text,
                                 u64 read_pos, GenomePos text_pos, int xdrop,
                                 u64& bases_compared) {
  static const xdrop_kernels::ScanFn kScan =
      pick_kernel(xdrop_kernels::fwd_kernel(SimdLevel::kScalar),
                  xdrop_kernels::fwd_kernel(SimdLevel::kSse2),
                  xdrop_kernels::fwd_kernel(SimdLevel::kAvx2));
  const u64 limit =
      std::min<u64>(read.size() - read_pos, text.size() - text_pos);
  const xdrop_kernels::ScanResult r =
      kScan(read.data() + read_pos, text.data() + text_pos, limit, xdrop);
  bases_compared += r.compared;
  return {r.best_matched, r.best_len};
}

/// Chains the window's loci (sorted by read_offset) with the classic
/// O(L^2) DP, maximizing total seed-matched bases under colinearity and
/// the intron cap. Writes the best chain's indices, ascending, into
/// ws.chain; the DP bands live in ws and are reused across windows.
void chain_window(const std::vector<SeedLocus>& loci,
                  const AlignerParams& params, ExtendWorkspace& ws,
                  u64& bases_compared) {
  const usize n = loci.size();
  ws.chain_score.assign(n, 0);
  ws.chain_prev.assign(n, -1);
  // The O(L^2) pair loop below dominates repeat-heavy reads. Work on raw
  // pointers and local accumulators: stores through the workspace members
  // (or the counter reference) may alias the arrays being read, which
  // forces the compiler to reload them every iteration. (A branchless
  // predicated variant was measured ~15-20% slower on repeat-heavy reads:
  // the early-out tests are well predicted, so predication only adds work.)
  const SeedLocus* const lp = loci.data();
  u64* const score = ws.chain_score.data();
  i64* const prev = ws.chain_prev.data();
  const u64 max_intron = params.max_intron;
  u64 compared = 0;
  usize best = 0;
  for (usize i = 0; i < n; ++i) {
    const SeedLocus& b = lp[i];
    u64 best_i = b.length;
    i64 prev_i = -1;
    for (usize j = 0; j < i; ++j) {
      ++compared;  // chaining work is real work
      const SeedLocus& a = lp[j];
      if (a.read_end() > b.read_offset) continue;       // read overlap
      if (a.text_end() > b.text_start) continue;        // genome overlap
      const u64 read_gap = b.read_offset - a.read_end();
      const u64 text_gap = b.text_start - a.text_end();
      if (text_gap < read_gap) continue;                // insertion: skip
      if (text_gap - read_gap > max_intron) continue;
      if (score[j] + b.length > best_i) {
        best_i = score[j] + b.length;
        prev_i = static_cast<i64>(j);
      }
    }
    score[i] = best_i;
    prev[i] = prev_i;
    if (best_i > score[best]) best = i;
  }
  bases_compared += compared;
  ws.chain.clear();
  for (i64 at = static_cast<i64>(best); at >= 0; at = prev[at]) {
    ws.chain.push_back(static_cast<usize>(at));
  }
  std::reverse(ws.chain.begin(), ws.chain.end());
}

}  // namespace

void score_windows(const GenomeIndex& index, std::string_view read,
                   const std::vector<Seed>& seeds, bool reverse,
                   const AlignerParams& params, ExtendStats& stats,
                   ExtendWorkspace& ws, std::vector<AlignmentHit>& hits) {
  const std::string_view text = index.text();

  // 1. Enumerate loci (capped per seed for hyper-repetitive seeds).
  ws.loci.clear();
  for (const Seed& seed : seeds) {
    u32 count = seed.interval.count();
    if (count > params.anchor_max_loci) {
      stats.capped = true;
      count = params.anchor_max_loci;
    }
    for (u32 k = 0; k < count; ++k) {
      const GenomePos pos = index.sa_position(seed.interval.lo + k);
      if (pos < seed.read_offset) continue;  // read would start before text 0
      ws.loci.push_back(
          {seed.read_offset, seed.length, pos, index.locate(pos).contig});
      ++stats.loci_enumerated;
    }
  }
  if (ws.loci.empty()) return;

  // 2. Cluster by (contig, diagonal): alignments can never span contigs
  //    (STAR's windows are likewise per-contig bins), and within a contig
  //    a diagonal gap above the intron cap starts a new genomic window.
  std::sort(ws.loci.begin(), ws.loci.end(),
            [](const SeedLocus& a, const SeedLocus& b) {
              if (a.contig != b.contig) return a.contig < b.contig;
              return a.diagonal() < b.diagonal();
            });

  usize window_begin = 0;
  for (usize i = 1; i <= ws.loci.size(); ++i) {
    const bool boundary =
        i == ws.loci.size() || ws.loci[i].contig != ws.loci[i - 1].contig ||
        ws.loci[i].diagonal() - ws.loci[i - 1].diagonal() >
            static_cast<i64>(params.max_intron);
    if (!boundary) continue;

    // Window is loci[window_begin, i).
    ws.window.assign(ws.loci.begin() + static_cast<i64>(window_begin),
                     ws.loci.begin() + static_cast<i64>(i));
    window_begin = i;
    ++stats.windows_scored;

    // Bound the chaining DP on pathological windows (tandem repeats).
    if (ws.window.size() > params.window_loci_cap) {
      ws.window.resize(params.window_loci_cap);
    }
    std::sort(ws.window.begin(), ws.window.end(),
              [](const SeedLocus& a, const SeedLocus& b) {
                if (a.read_offset != b.read_offset) {
                  return a.read_offset < b.read_offset;
                }
                return a.text_start < b.text_start;
              });
    chain_window(ws.window, params, ws, stats.bases_compared);
    if (ws.chain.empty()) continue;
    const std::vector<usize>& chain = ws.chain;
    const std::vector<SeedLocus>& window = ws.window;

    // 3. Score: chained seed bases + interior gap matches + end extensions.
    u64 matched = 0;
    ws.segments.clear();
    for (usize c = 0; c < chain.size(); ++c) {
      const SeedLocus& locus = window[chain[c]];
      matched += locus.length;
      ws.segments.push_back(
          {locus.read_offset, locus.text_start, locus.length});
      if (c == 0) continue;
      const SeedLocus& prior = window[chain[c - 1]];
      const u64 read_gap = locus.read_offset - prior.read_end();
      const u64 text_gap = locus.text_start - prior.text_end();
      if (read_gap == 0) continue;
      // Compare gap bases on the downstream diagonal (attributing the gap
      // to the downstream exon; adequate at our error rates).
      const GenomePos gap_text = locus.text_start - read_gap;
      u64 gap_matched = 0;
      for (u64 g = 0; g < read_gap; ++g) {
        if (read[prior.read_end() + g] == text[gap_text + g]) ++gap_matched;
      }
      stats.bases_compared += read_gap;
      matched += gap_matched;
      (void)text_gap;
    }

    // Left extension from the first chained seed.
    {
      const SeedLocus& first = window[chain.front()];
      const auto [ext_matched, ext_len] =
          extend_left(read, text, first.read_offset, first.text_start,
                      params.xdrop, stats.bases_compared);
      matched += ext_matched;
      if (ext_len > 0) {
        ws.segments.front().read_start -= ext_len;
        ws.segments.front().text_start -= ext_len;
        ws.segments.front().length += ext_len;
      }
    }
    // Right extension from the last chained seed.
    {
      const SeedLocus& last = window[chain.back()];
      const auto [ext_matched, ext_len] =
          extend_right(read, text, last.read_end(), last.text_end(),
                       params.xdrop, stats.bases_compared);
      matched += ext_matched;
      if (ext_len > 0) ws.segments.back().length += ext_len;
    }

    const u32 score = static_cast<u32>(std::min<u64>(matched, read.size()));
    if (score == 0) continue;

    // Merge segments that are contiguous in both read and text (gap filled
    // on the same diagonal) directly into the hit's inline storage.
    AlignmentHit& hit = hits.emplace_back();
    hit.reverse = reverse;
    hit.score = score;
    for (const auto& segment : ws.segments) {
      if (!hit.segments.empty()) {
        AlignedSegment& tail = hit.segments.back();
        const u64 read_gap =
            segment.read_start - (tail.read_start + tail.length);
        const u64 text_gap =
            segment.text_start - (tail.text_start + tail.length);
        if (read_gap == text_gap) {
          tail.length = segment.read_start + segment.length - tail.read_start;
          continue;
        }
      }
      hit.segments.push_back(segment);
    }
    hit.text_pos = hit.segments.front().text_start;
  }
}

std::vector<AlignmentHit> score_windows(const GenomeIndex& index,
                                        std::string_view read,
                                        const std::vector<Seed>& seeds,
                                        bool reverse,
                                        const AlignerParams& params,
                                        ExtendStats& stats) {
  ExtendWorkspace ws;
  std::vector<AlignmentHit> hits;
  score_windows(index, read, seeds, reverse, params, stats, ws, hits);
  return hits;
}

}  // namespace staratlas
