#include "align/sharded.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "align/final_log.h"
#include "common/error.h"
#include "io/fastq_block.h"

namespace staratlas {

namespace {

u64 resolve_interval(const ShardedConfig& config, u64 total_reads) {
  return config.engine.progress_check_interval
             ? config.engine.progress_check_interval
             : std::max<u64>(1, total_reads / 50);
}

/// BatchSource over one byte range: batches are capped so they never
/// straddle a global checkpoint boundary — the load-bearing half of the
/// progress-log determinism contract. `global_offset` is the range's
/// absolute first-read index from the plan.
class CappedRangeSource {
 public:
  CappedRangeSource(std::string_view range_data, u64 global_offset,
                    u64 interval, usize batch_reads)
      : reader_(range_data),
        global_offset_(global_offset),
        interval_(interval),
        batch_reads_(std::max<usize>(1, batch_reads)) {}

  bool operator()(ReadBatch& batch) {
    const u64 global = global_offset_ + consumed_;
    const u64 to_boundary = interval_ - global % interval_;
    const usize want =
        static_cast<usize>(std::min<u64>(batch_reads_, to_boundary));
    const usize got = reader_.read_batch(batch, want);
    consumed_ += got;
    return got > 0;
  }

 private:
  FastqBlockReader reader_;
  u64 global_offset_;
  u64 interval_;
  usize batch_reads_;
  u64 consumed_ = 0;
};

}  // namespace

ShardedRun align_sharded(std::string_view fastq,
                         const ShardIndexProvider& provider,
                         const Annotation* annotation,
                         const ShardedConfig& config) {
  STARATLAS_CHECK(provider != nullptr);
  STARATLAS_CHECK(config.num_shards >= 1);
  const auto wall_start = std::chrono::steady_clock::now();

  ShardedRun out;
  out.plan = plan_fastq_shards(fastq, config.num_shards);
  const u64 interval = resolve_interval(config, out.plan.total_reads);
  out.global_check_interval = interval;

  const usize num_shards = config.num_shards;
  out.shard_runs.resize(num_shards);
  // Shard-local snapshots taken exactly at global checkpoint boundaries;
  // indexed by shard so concurrent workers never share a vector.
  std::vector<std::vector<ProgressSnapshot>> checkpoints(num_shards);
  std::vector<std::exception_ptr> errors(num_shards);

  auto run_shard = [&](usize s) noexcept {
    try {
      const ShardRange& range = out.plan.ranges[s];
      const std::shared_ptr<const GenomeIndex> index = provider(s);
      STARATLAS_CHECK(index != nullptr);
      EngineConfig engine_config = config.engine;
      // The engine checkpoints at shard-local multiples, which never line
      // up with global boundaries for a shard starting mid-interval; ask
      // for a callback at every commit and pick the boundaries out by
      // absolute read position instead.
      engine_config.progress_check_interval = 1;
      AlignmentEngine engine(*index, annotation, engine_config);
      CappedRangeSource source(
          fastq.substr(range.byte_begin, range.byte_end - range.byte_begin),
          range.first_read, interval, config.batch_reads);
      const ProgressCallback on_commit = [&](const ProgressSnapshot& snap) {
        if ((range.first_read + snap.processed) % interval == 0) {
          checkpoints[s].push_back(snap);
        }
        return EngineCommand::kContinue;
      };
      // The shard's own read count is the progress denominator, so its
      // local %complete is correct (not off by a factor of num_shards).
      AlignmentRun run = engine.run_stream(
          [&source](ReadBatch& batch) { return source(batch); },
          range.num_reads, on_commit);
      STARATLAS_CHECK(run.stats.processed == range.num_reads);
      out.shard_runs[s] = std::move(run);
    } catch (...) {
      errors[s] = std::current_exception();
    }
  };

  if (num_shards == 1) {
    run_shard(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (usize s = 0; s < num_shards; ++s) workers.emplace_back(run_shard, s);
    for (auto& worker : workers) worker.join();
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Gather: sequential walk in shard order. Each recorded snapshot plus
  // the full stats of every earlier shard equals the unsharded cumulative
  // counters at that boundary (in-order commits within a shard, exact
  // read partition across shards).
  AlignmentRun& merged = out.merged;
  const bool quant = config.engine.quant_gene_counts && annotation != nullptr;
  if (quant) merged.gene_counts = GeneCountsTable(annotation->num_genes());
  merged.outcomes.reserve(out.plan.total_reads);
  std::vector<std::vector<Junction>> junction_parts;
  junction_parts.reserve(num_shards);
  MappingStats prefix;
  u64 next_boundary = interval;
  for (usize s = 0; s < num_shards; ++s) {
    AlignmentRun& shard = out.shard_runs[s];
    const ShardRange& range = out.plan.ranges[s];
    for (const ProgressSnapshot& snap : checkpoints[s]) {
      STARATLAS_CHECK(range.first_read + snap.processed == next_boundary);
      ProgressSnapshot row;
      row.total_reads = out.plan.total_reads;
      row.processed = next_boundary;
      row.unique = prefix.unique + snap.unique;
      row.multi = prefix.multi + snap.multi;
      row.too_many = prefix.too_many + snap.too_many;
      row.unmapped = prefix.unmapped + snap.unmapped;
      merged.progress_log.append(row);
      next_boundary += interval;
    }
    prefix += shard.stats;
    merged.stats += shard.stats;
    merged.outcomes.insert(merged.outcomes.end(), shard.outcomes.begin(),
                           shard.outcomes.end());
    shard.outcomes.clear();
    shard.outcomes.shrink_to_fit();
    if (quant) merged.gene_counts += shard.gene_counts;
    if (config.engine.collect_junctions) {
      junction_parts.push_back(shard.junctions);
    }
    merged.stream_batches += shard.stream_batches;
    merged.stream_consumer_allocs += shard.stream_consumer_allocs;
    merged.stream_peak_arena_bytes += shard.stream_peak_arena_bytes;
  }
  STARATLAS_CHECK(merged.stats.processed == out.plan.total_reads);
  STARATLAS_CHECK(merged.progress_log.entries().size() ==
                  out.plan.total_reads / interval);
  if (config.engine.collect_junctions) {
    merged.junctions = merge_junctions(junction_parts);
  }

  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  merged.wall_seconds = out.wall_seconds;
  // Final summary row under the same condition run_stream uses with a
  // callback installed: only when checkpoint rows exist.
  if (!merged.progress_log.entries().empty()) {
    ProgressSnapshot fin;
    fin.total_reads = out.plan.total_reads;
    fin.processed = merged.stats.processed;
    fin.unique = merged.stats.unique;
    fin.multi = merged.stats.multi;
    fin.too_many = merged.stats.too_many;
    fin.unmapped = merged.stats.unmapped;
    fin.elapsed_seconds = out.wall_seconds;
    merged.progress_log.append(fin);
  }
  return out;
}

ShardedRun align_sharded(std::string_view fastq, const GenomeIndex& index,
                         const Annotation* annotation,
                         const ShardedConfig& config) {
  // Aliasing shared_ptr: borrowed, never deleted; caller keeps it alive.
  const std::shared_ptr<const GenomeIndex> borrowed(
      std::shared_ptr<const GenomeIndex>(), &index);
  return align_sharded(
      fastq, [&borrowed](usize) { return borrowed; }, annotation, config);
}

ShardedRun align_sharded(std::string_view fastq, SharedIndexCache& cache,
                         const std::string& key,
                         const SharedIndexCache::Loader& loader,
                         const Annotation* annotation,
                         const ShardedConfig& config) {
  return align_sharded(
      fastq, [&](usize) { return cache.acquire(key, loader); }, annotation,
      config);
}

AlignmentRun align_unsharded_reference(std::string_view fastq,
                                       const GenomeIndex& index,
                                       const Annotation* annotation,
                                       const ShardedConfig& config) {
  const u64 total_reads = count_fastq_records(fastq);
  const u64 interval = resolve_interval(config, total_reads);
  EngineConfig engine_config = config.engine;
  engine_config.progress_check_interval = interval;
  AlignmentEngine engine(index, annotation, engine_config);
  CappedRangeSource source(fastq, 0, interval, config.batch_reads);
  const ProgressCallback keep_going = [](const ProgressSnapshot&) {
    return EngineCommand::kContinue;
  };
  AlignmentRun run = engine.run_stream(
      [&source](ReadBatch& batch) { return source(batch); }, total_reads,
      keep_going);
  STARATLAS_CHECK(run.stats.processed == total_reads);
  return run;
}

std::string render_sharded_final_log(const ShardedRun& run,
                                     double mean_read_length) {
  return render_final_log(run.merged, run.plan.total_reads, mean_read_length);
}

}  // namespace staratlas
