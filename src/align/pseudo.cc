#include "align/pseudo.h"

#include <algorithm>

#include "common/error.h"
#include "index/packed_sequence.h"

namespace staratlas {

namespace {
// Encodes a pure-ACGT k-mer into 2 bits/base; returns false on N etc.
bool encode_kmer(std::string_view kmer, u64& code) {
  code = 0;
  for (char c : kmer) {
    const u8 b = base_code(c);
    if (b == 0xff) return false;
    code = (code << 2) | b;
  }
  return true;
}
}  // namespace

PseudoAligner::PseudoAligner(const Assembly& assembly,
                             const Annotation& annotation,
                             const PseudoParams& params)
    : params_(params), num_genes_(annotation.num_genes()) {
  STARATLAS_CHECK(params_.k >= 11 && params_.k <= 31);
  STARATLAS_CHECK(params_.min_compatible_fraction > 0.0 &&
                  params_.min_compatible_fraction <= 1.0);
  for (usize g = 0; g < annotation.num_genes(); ++g) {
    const Gene& gene = annotation.gene(static_cast<GeneId>(g));
    // Index both strands of the spliced transcript so reads from either
    // sequencing orientation hit directly.
    for (const std::string& transcript :
         {gene.transcript_sequence(assembly),
          reverse_complement(gene.transcript_sequence(assembly))}) {
      if (transcript.size() < params_.k) continue;
      for (usize i = 0; i + params_.k <= transcript.size(); ++i) {
        u64 code;
        if (!encode_kmer(std::string_view(transcript).substr(i, params_.k),
                         code)) {
          continue;
        }
        auto& genes = kmer_to_genes_[code];
        if (genes.empty() || genes.back() != static_cast<GeneId>(g)) {
          genes.push_back(static_cast<GeneId>(g));
        }
      }
    }
  }
}

bool PseudoAligner::kmer_genes(std::string_view kmer,
                               std::vector<GeneId>& out) const {
  u64 code;
  if (!encode_kmer(kmer, code)) return false;
  auto it = kmer_to_genes_.find(code);
  if (it == kmer_to_genes_.end()) return false;
  out = it->second;
  return true;
}

PseudoResult PseudoAligner::classify(std::string_view read) const {
  PseudoResult result;
  if (read.size() < params_.k) return result;

  // Intersect the gene sets of the read's k-mers (skipping absent k-mers,
  // which come from errors/junctions), kallisto-style.
  std::vector<GeneId> intersection;
  bool started = false;
  usize total_kmers = 0;
  usize hit_kmers = 0;
  // Stride by k/2 (consecutive k-mers are nearly redundant).
  const usize stride = std::max<usize>(1, params_.k / 2);
  std::vector<GeneId> genes;
  for (usize i = 0; i + params_.k <= read.size(); i += stride) {
    ++total_kmers;
    if (!kmer_genes(read.substr(i, params_.k), genes)) continue;
    ++hit_kmers;
    if (!started) {
      intersection = genes;
      started = true;
    } else {
      std::vector<GeneId> merged;
      std::set_intersection(intersection.begin(), intersection.end(),
                            genes.begin(), genes.end(),
                            std::back_inserter(merged));
      if (!merged.empty()) intersection = std::move(merged);
      // An empty intersection (error k-mer pointing elsewhere) keeps the
      // previous set, mirroring the skipping-robustness of real tools.
    }
  }
  const double compatible_fraction =
      total_kmers == 0 ? 0.0
                       : static_cast<double>(hit_kmers) /
                             static_cast<double>(total_kmers);
  if (!started || compatible_fraction < params_.min_compatible_fraction) {
    return result;
  }
  result.mapped = true;
  result.compatible = std::move(intersection);
  return result;
}

PseudoStats PseudoAligner::run(const std::vector<std::string>& reads) const {
  PseudoStats stats;
  stats.gene_counts.assign(num_genes_, 0);
  for (const std::string& read : reads) {
    ++stats.processed;
    const PseudoResult result = classify(read);
    if (!result.mapped) continue;
    ++stats.mapped;
    if (result.compatible.size() == 1) {
      ++stats.unique_gene;
      ++stats.gene_counts[result.compatible.front()];
    }
  }
  return stats;
}

}  // namespace staratlas
