#include "align/seed.h"

#include <algorithm>

namespace staratlas {

void find_seeds(const GenomeIndex& index, std::string_view read,
                const AlignerParams& params, SeedSearchResult& result) {
  result.clear(read.size());

  // STAR starts an MMP walk at every seedSearchStartLmax boundary; each
  // walk then restarts just past the prefix it matched. Seeds are deduped
  // by read offset (later walks re-cover earlier territory).
  MmpResult mmp;
  const u64 lmax = std::max<usize>(1, params.seed_search_start_lmax);
  for (u64 grid = 0; grid < read.size(); grid += lmax) {
    u64 offset = grid;
    const u64 walk_end = read.size();
    while (offset < walk_end &&
           result.seeds.size() < params.max_seeds_per_read) {
      if (result.offset_seeded[offset]) {
        break;  // this walk merged into a previous one
      }
      index.mmp(read.substr(offset), mmp);
      ++result.mmp_calls;
      result.chars_matched += mmp.length;
      if (mmp.length >= params.seed_min_length) {
        result.seeds.push_back({offset, mmp.length, mmp.interval});
        result.offset_seeded[offset] = 1;
        offset += mmp.length;
      } else {
        // Too short to anchor anything: a sequencing error or foreign
        // sequence. Step past the failure point, as STAR does.
        offset += mmp.length + 1;
      }
    }
    if (result.seeds.size() >= params.max_seeds_per_read) break;
  }
}

SeedSearchResult find_seeds(const GenomeIndex& index, std::string_view read,
                            const AlignerParams& params) {
  SeedSearchResult result;
  find_seeds(index, read, params, result);
  return result;
}

}  // namespace staratlas
