#include "align/seed.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

void find_seeds(const GenomeIndex& index, std::string_view read,
                const AlignerParams& params, SeedSearchResult& result) {
  result.clear(read.size());

  // STAR starts an MMP walk at every seedSearchStartLmax boundary; each
  // walk then restarts just past the prefix it matched. Seeds are deduped
  // by read offset (later walks re-cover earlier territory).
  MmpResult mmp;
  const u64 lmax = std::max<usize>(1, params.seed_search_start_lmax);
  for (u64 grid = 0; grid < read.size(); grid += lmax) {
    u64 offset = grid;
    const u64 walk_end = read.size();
    while (offset < walk_end &&
           result.seeds.size() < params.max_seeds_per_read) {
      if (result.offset_seeded[offset]) {
        break;  // this walk merged into a previous one
      }
      index.mmp(read.substr(offset), mmp);
      ++result.mmp_calls;
      result.chars_matched += mmp.length;
      if (mmp.length >= params.seed_min_length) {
        result.seeds.push_back({offset, mmp.length, mmp.interval});
        result.offset_seeded[offset] = 1;
        offset += mmp.length;
      } else {
        // Too short to anchor anything: a sequencing error or foreign
        // sequence. Step past the failure point, as STAR does.
        offset += mmp.length + 1;
      }
    }
    if (result.seeds.size() >= params.max_seeds_per_read) break;
  }
}

SeedSearchResult find_seeds(const GenomeIndex& index, std::string_view read,
                            const AlignerParams& params) {
  SeedSearchResult result;
  find_seeds(index, read, params, result);
  return result;
}

namespace {
/// Advances one walk's (grid, offset) cursor to its next MMP start, or
/// returns false when the walk is finished. Encodes exactly the control
/// flow of find_seeds' nested loops: the inner while ends at the read end
/// or a seeded offset (walk merged into a previous one), the outer for
/// steps the grid by lmax, and hitting max_seeds_per_read ends everything.
bool next_mmp_start(std::string_view read, const SeedSearchResult& result,
                    const AlignerParams& params, u64 lmax, u64& grid,
                    u64& offset) {
  for (;;) {
    if (result.seeds.size() >= params.max_seeds_per_read) return false;
    if (offset < read.size() && !result.offset_seeded[offset]) return true;
    grid += lmax;
    if (grid >= read.size()) return false;
    offset = grid;
  }
}

/// Drives every read's MMP walk through the streaming batch walker. The
/// tag is the walk (= read) index. next() prefers walks freshly advanced
/// by done() — LIFO, so a restart issues while its read tail is still in
/// cache — and falls back to starting the next unstarted read. Each
/// walk's queries execute strictly in walk order, so its result is
/// independent of how walks interleave across lanes.
class SeedWalkFeed final : public GenomeIndex::MmpFeed {
 public:
  SeedWalkFeed(std::span<const std::string_view> reads,
               const AlignerParams& params,
               std::span<SeedSearchResult> results, SeedBatchScratch& s)
      : reads_(reads),
        params_(params),
        results_(results),
        s_(s),
        lmax_(std::max<usize>(1, params.seed_search_start_lmax)) {}

  bool next(std::string_view& query, u32& tag) override {
    u32 w;
    if (!s_.ready.empty()) {
      w = s_.ready.back();
      s_.ready.pop_back();
    } else {
      for (;;) {
        if (cursor_ >= reads_.size()) return false;
        w = static_cast<u32>(cursor_++);
        results_[w].clear(reads_[w].size());
        if (next_mmp_start(reads_[w], results_[w], params_, lmax_,
                           s_.grid[w], s_.offset[w])) {
          break;
        }
      }
    }
    query = reads_[w].substr(s_.offset[w]);
    tag = w;
    return true;
  }

  void done(u32 w, const MmpResult& mmp) override {
    SeedSearchResult& result = results_[w];
    u64& offset = s_.offset[w];
    ++result.mmp_calls;
    result.chars_matched += mmp.length;
    if (mmp.length >= params_.seed_min_length) {
      result.seeds.push_back({offset, mmp.length, mmp.interval});
      result.offset_seeded[offset] = 1;
      offset += mmp.length;
    } else {
      offset += mmp.length + 1;
    }
    if (next_mmp_start(reads_[w], result, params_, lmax_, s_.grid[w],
                       offset)) {
      s_.ready.push_back(w);
    }
  }

 private:
  std::span<const std::string_view> reads_;
  const AlignerParams& params_;
  std::span<SeedSearchResult> results_;
  SeedBatchScratch& s_;
  const u64 lmax_;
  usize cursor_ = 0;
};
}  // namespace

void find_seeds_batch(const GenomeIndex& index,
                      std::span<const std::string_view> reads,
                      const AlignerParams& params,
                      std::span<SeedSearchResult> results,
                      SeedBatchScratch& scratch) {
  STARATLAS_CHECK(reads.size() == results.size());
  scratch.grid.assign(reads.size(), 0);
  scratch.offset.assign(reads.size(), 0);
  scratch.ready.clear();
  SeedWalkFeed feed(reads, params, results, scratch);
  index.mmp_batch_stream(feed);
}

}  // namespace staratlas
