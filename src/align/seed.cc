#include "align/seed.h"

#include <algorithm>

namespace staratlas {

SeedSearchResult find_seeds(const GenomeIndex& index, std::string_view read,
                            const AlignerParams& params) {
  SeedSearchResult result;

  // STAR starts an MMP walk at every seedSearchStartLmax boundary; each
  // walk then restarts just past the prefix it matched. Seeds are deduped
  // by read offset (later walks re-cover earlier territory).
  std::vector<u64> seeded_offsets;
  const u64 lmax = std::max<usize>(1, params.seed_search_start_lmax);
  for (u64 grid = 0; grid < read.size(); grid += lmax) {
    u64 offset = grid;
    const u64 walk_end = read.size();
    while (offset < walk_end &&
           result.seeds.size() < params.max_seeds_per_read) {
      if (std::find(seeded_offsets.begin(), seeded_offsets.end(), offset) !=
          seeded_offsets.end()) {
        break;  // this walk merged into a previous one
      }
      const MmpResult mmp = index.mmp(read.substr(offset));
      ++result.mmp_calls;
      result.chars_matched += mmp.length;
      if (mmp.length >= params.seed_min_length) {
        result.seeds.push_back({offset, mmp.length, mmp.interval});
        seeded_offsets.push_back(offset);
        offset += mmp.length;
      } else {
        // Too short to anchor anything: a sequencing error or foreign
        // sequence. Step past the failure point, as STAR does.
        offset += mmp.length + 1;
      }
    }
    if (result.seeds.size() >= params.max_seeds_per_read) break;
  }
  return result;
}

}  // namespace staratlas
