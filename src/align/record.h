// Per-read alignment results and aggregate mapping statistics.
#pragma once

#include <string_view>
#include <vector>

#include "common/small_vec.h"
#include "common/types.h"

namespace staratlas {

/// Non-owning view of one read, the form the streaming ingest path hands
/// the aligner: the views point into a ReadBatch arena (io/read_batch.h)
/// and stay valid until that batch is cleared or recycled. The batch path
/// and the owning FastqRecord/ReadSet path converge on the same
/// Aligner::align(std::string_view, ...) hot path.
struct ReadView {
  std::string_view name;
  std::string_view sequence;
  std::string_view quality;  ///< phred+33, same length as sequence
};

enum class ReadOutcome : u8 {
  kUniqueMapped = 0,
  kMultiMapped = 1,
  kTooManyLoci = 2,
  kUnmapped = 3,
};

const char* read_outcome_name(ReadOutcome outcome);

/// A gapless aligned block: read[read_start, read_start+length) matches
/// text[text_start, text_start+length) up to mismatches.
struct AlignedSegment {
  u64 read_start = 0;
  GenomePos text_start = 0;
  u64 length = 0;
};

/// Segment storage for one hit. Inline capacity 4 covers unspliced reads
/// (1 segment) and typical spliced reads (one segment per exon crossed);
/// pathological reads spill to the heap transparently.
using SegmentList = SmallVec<AlignedSegment, 4>;

/// One candidate placement of a read.
struct AlignmentHit {
  GenomePos text_pos = 0;  ///< leftmost text coordinate of the alignment
  bool reverse = false;    ///< read aligned as its reverse complement
  u32 score = 0;           ///< matched bases
  SegmentList segments;    ///< ascending, possibly spliced
};

/// Full alignment result for one read.
struct ReadAlignment {
  ReadOutcome outcome = ReadOutcome::kUnmapped;
  u32 best_score = 0;
  u32 num_loci = 0;  ///< loci scoring within multimap_score_range of best
  bool repetitive_capped = false;  ///< some seed exceeded anchor_max_loci
  std::vector<AlignmentHit> hits;  ///< best-first, at most multimap_nmax

  /// Clears per-read fields while keeping `hits` capacity — the engine's
  /// workers reuse one result slot per read to stay allocation-free.
  void reset() {
    outcome = ReadOutcome::kUnmapped;
    best_score = 0;
    num_loci = 0;
    repetitive_capped = false;
    hits.clear();
  }
};

/// Aggregate statistics; also carries the honest work counters the virtual
/// time model is calibrated from.
struct MappingStats {
  u64 processed = 0;
  u64 unique = 0;
  u64 multi = 0;
  u64 too_many = 0;
  u64 unmapped = 0;

  u64 seeds_generated = 0;
  u64 windows_scored = 0;
  u64 bases_compared = 0;

  /// STAR-style mapping rate: unique + multi over processed.
  double mapped_rate() const {
    return processed == 0
               ? 0.0
               : static_cast<double>(unique + multi) /
                     static_cast<double>(processed);
  }
  double unique_rate() const {
    return processed == 0
               ? 0.0
               : static_cast<double>(unique) / static_cast<double>(processed);
  }

  void add_outcome(ReadOutcome outcome);
  MappingStats& operator+=(const MappingStats& other);
};

}  // namespace staratlas
