// EngineRunRequest: the single front door to the alignment engine.
//
// Historically the engine grew four entrypoints — run() over an in-memory
// ReadSet, run_stream() over a pull source, align_sharded() over raw FASTQ
// bytes, and the service's chunk-hook path — each with its own knobs and
// its own scattered validation (the CLI rejected early-stop x shards, the
// service re-checked read counts, benches passed positional flags). An
// EngineRunRequest names every option once, validates every combination
// rule in ONE place (validate()), and AlignmentEngine::execute() dispatches
// to the right execution strategy. The legacy entrypoints survive as thin
// wrappers that build a request (see engine.h) so existing callers keep
// working; new code should build requests.
//
// The multi-tenant service is the fourth consumer: it validates each
// submission as a kMemory request at admission (same rules, same error
// text) and then executes it chunk-by-chunk through the engine's
// align_chunk hooks — execute() is a single blocking call and cannot be
// preempted between chunks, which is the service's whole job.
#pragma once

#include <string_view>

#include "align/early_stopping.h"
#include "align/engine.h"

namespace staratlas {

struct ShardedRun;  // align/sharded.h

struct EngineRunRequest {
  /// Execution strategy. kAuto picks from the supplied source and shard
  /// count: shards > 1 -> kSharded, a BatchSource or FASTQ text ->
  /// kStream, a ReadSet -> kMemory.
  enum class Mode : u8 { kAuto = 0, kMemory, kStream, kSharded };

  // ---- input source: set exactly one --------------------------------
  /// In-memory read set (kMemory, or kStream via internal batching).
  const ReadSet* reads = nullptr;
  /// Pull-based streaming source (kStream only).
  BatchSource batches;
  /// Raw FASTQ bytes — an mmap'd file or decoded container (kStream or
  /// kSharded).
  std::string_view fastq_text;

  Mode mode = Mode::kAuto;

  /// Shard fan-out over fastq_text; > 1 implies kSharded. Early stopping
  /// is rejected with shards (the gather layer has no abort protocol).
  usize num_shards = 1;
  /// Reads per internally built batch (fastq_text / reads streaming and
  /// the sharded scatter).
  usize batch_reads = 256;
  /// Total read count when known: sizes the outcome vector and the
  /// default progress-checkpoint interval for pull-source streams.
  u64 total_reads_hint = 0;

  /// Early stopping attached engine-side: the request owns the policy and
  /// execute() runs the controller, instead of every caller hand-wiring
  /// one. Disabled by default.
  EarlyStopPolicy early_stop{.enabled = false};
  /// Where execute() records the early-stop decision (optional; must
  /// outlive the call).
  EarlyStopDecision* early_stop_out = nullptr;

  /// User progress callback, invoked before the early-stop controller;
  /// an abort from either wins.
  ProgressCallback callback;

  /// Where execute() deposits the full scatter/gather result for kSharded
  /// runs (optional; the merged AlignmentRun is always returned).
  ShardedRun* sharded_out = nullptr;

  /// The mode kAuto resolves to (validation rules applied against this).
  Mode resolved_mode() const;

  /// The single validation point for every entrypoint: exactly one
  /// source, mode/source compatibility, shard/early-stop exclusion,
  /// policy parameter ranges. Throws InvalidArgument.
  void validate() const;
};

const char* to_string(EngineRunRequest::Mode mode);

}  // namespace staratlas
