// AlignmentEngine: multi-threaded alignment of a whole ReadSet with
// progress callbacks and cooperative abort — the hook the paper's
// early-stopping optimization attaches to.
//
// The engine is built for reuse across samples: its worker thread pool and
// per-worker AlignWorkspaces are created on the first run() and kept for
// the engine's lifetime, so a 1000-sample campaign pays thread spawn and
// scratch allocation once, not per sample (the compute analog of STAR's
// --genomeLoad LoadAndKeep).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "align/aligner.h"
#include "align/gene_counts.h"
#include "align/junctions.h"
#include "align/params.h"
#include "align/progress.h"
#include "align/record.h"
#include "align/workspace.h"
#include "common/thread_pool.h"
#include "genome/annotation.h"
#include "index/genome_index.h"
#include "io/fastq.h"
#include "io/read_batch.h"

namespace staratlas {

struct EngineRunRequest;  // align/run_request.h

enum class EngineCommand { kContinue, kAbort };

/// Invoked (serialized) whenever `progress_check_interval` more reads have
/// completed. Returning kAbort stops the run promptly (chunk granularity).
using ProgressCallback = std::function<EngineCommand(const ProgressSnapshot&)>;

/// Fills `batch` (already cleared; arena capacity reused) with the next
/// reads of the stream. Return false once the stream is exhausted (an
/// empty batch is also treated as end of stream). Called from the
/// engine's producer thread, never concurrently with itself.
using BatchSource = std::function<bool(ReadBatch&)>;

struct EngineConfig {
  AlignerParams params;
  usize num_threads = 1;
  usize chunk_size = 256;  ///< reads per work unit
  /// Reads between progress-callback invocations; 0 = total/50.
  u64 progress_check_interval = 0;
  bool quant_gene_counts = true;
  /// Collect splice junctions (SJ.out.tab equivalent).
  bool collect_junctions = false;
  /// Minimum genomic gap treated as an intron when collecting junctions.
  u64 junction_min_intron = 21;
  /// Batch slots in flight for run_stream (the backpressure bound: peak
  /// ingest memory is this many batch arenas). 0 = num_threads + 2.
  usize stream_queue_depth = 0;
};

/// Accumulators for one externally scheduled chunk — the preemptible work
/// unit of the multi-tenant service. A service worker owns one sink per
/// worker slot and reuses it across chunks of *different* samples: the
/// engine zeroes it (capacity kept) at the start of every align_chunk, so
/// steady-state chunk execution stays allocation-free like run()'s own
/// workers.
struct ChunkSink {
  MappingStats stats;
  GeneCountsTable counts;  ///< sized num_genes when quant is on
  /// Null unless the engine collects junctions.
  std::unique_ptr<JunctionCollector> junctions;
};

struct AlignmentRun {
  MappingStats stats;
  GeneCountsTable gene_counts;  ///< empty when quant_gene_counts is false
  /// Per-read outcomes, index-aligned with the input. On an aborted run,
  /// entries for unprocessed reads stay kUnmapped; stats.processed is
  /// authoritative.
  std::vector<ReadOutcome> outcomes;
  /// Splice junctions (empty unless collect_junctions was set).
  std::vector<Junction> junctions;
  ProgressLog progress_log;
  bool aborted = false;
  double wall_seconds = 0.0;  ///< measured real time of the run

  // run_stream telemetry (zero after run()).
  u64 stream_batches = 0;  ///< batches committed (aborted runs: up to abort)
  /// Heap allocations made on consumer (alignment) threads. With a warmed
  /// engine, quant/junctions off and no callback this is 0 — the streaming
  /// consume path is allocation-free at steady state.
  u64 stream_consumer_allocs = 0;
  /// Sum of the recycled batch-slot footprints (arena + outcome capacity):
  /// the streaming path's peak ingest memory, bounded by queue depth, not
  /// by sample size.
  u64 stream_peak_arena_bytes = 0;
};

class AlignmentEngine {
 public:
  /// `annotation` may be null when gene counting is disabled.
  AlignmentEngine(const GenomeIndex& index, const Annotation* annotation,
                  EngineConfig config);
  ~AlignmentEngine();

  const EngineConfig& config() const { return config_; }

  /// The single front door: validates the request (every combination rule
  /// in EngineRunRequest::validate) and dispatches to the in-memory,
  /// streaming or sharded execution strategy. The entrypoints below are
  /// thin compatibility wrappers over this. See align/run_request.h.
  AlignmentRun execute(const EngineRunRequest& request);

  /// Thin wrapper: execute() in memory mode. Aligns the read set.
  /// Deterministic in its statistics regardless of thread count; abort
  /// timing has chunk granularity. Not reentrant: one run at a time per
  /// engine (the worker pool and workspaces are engine-owned and reused
  /// run to run).
  AlignmentRun run(const ReadSet& reads, const ProgressCallback& callback = {});

  /// Thin wrapper: execute() in stream mode over a pull source.
  /// Streaming form: a producer thread pulls batches from `source` while
  /// the worker pool aligns them, overlapping parse/decode with alignment.
  /// A bounded ring of `stream_queue_depth` recycled batch slots provides
  /// backpressure, so peak ingest memory is a few batch arenas regardless
  /// of sample size. Batches are aligned in parallel but COMMITTED
  /// (stats/outcome merge, progress checkpoints, abort decisions) strictly
  /// in stream order, which makes every snapshot — and the processed count
  /// an early-stop abort lands on — bit-identical across thread counts and
  /// identical to a single-threaded run() whose chunk_size equals the
  /// batch size. `total_reads_hint` sizes the outcome vector and the
  /// default checkpoint interval (pass the known read count when you have
  /// it; 0 degrades to per-batch checkpoints). Not reentrant, but freely
  /// interleavable with run() on the same engine.
  AlignmentRun run_stream(const BatchSource& source, u64 total_reads_hint = 0,
                          const ProgressCallback& callback = {});

  /// Thin wrapper: execute() in stream mode over an in-memory ReadSet,
  /// batching `batch_size` reads at a time (tests and benchmarks; the
  /// pipeline streams from the SRA decoder instead).
  AlignmentRun run_stream_reads(const ReadSet& reads, usize batch_size,
                                const ProgressCallback& callback = {});

  // --- Chunk-granular scheduling hooks -------------------------------
  // run() owns its chunk queue; an external scheduler (the multi-tenant
  // service) instead interleaves chunks of MANY samples over one engine,
  // preempting a long sample between chunks. The hooks expose the same
  // per-chunk alignment body run()'s workers execute, so per-read results
  // are identical to a run() over the whole sample.

  /// Creates the worker pool and workspaces if needed and returns the
  /// number of worker slots (== num_threads). NOT thread-safe: call once
  /// before spawning external workers.
  usize prepare_worker_slots();

  /// A sink dimensioned for this engine's quant/junction configuration.
  ChunkSink make_chunk_sink() const;

  /// Aligns reads [begin, end) of `reads`, writing outcomes[r - begin]
  /// and accumulating stats/counts/junctions into `sink` (which is reset
  /// first, keeping capacity). Uses worker slot `slot`'s workspace:
  /// distinct slots may execute concurrently, the same slot must not.
  /// Requires prepare_worker_slots() first and outcomes.size() >= end -
  /// begin. Merging every chunk's sink of a sample reproduces run()'s
  /// stats, counts and junctions for that sample exactly (field-wise sums
  /// of chunk-local values, as run()'s own merge does).
  void align_chunk(const ReadSet& reads, usize begin, usize end, usize slot,
                   ChunkSink& sink, std::span<ReadOutcome> outcomes) const;

 private:
  struct StreamSlot;

  /// The real in-memory execution body (execute()'s kMemory strategy).
  AlignmentRun run_memory(const ReadSet& reads,
                          const ProgressCallback& callback);
  /// The real streaming execution body (execute()'s kStream strategy).
  AlignmentRun run_streaming(const BatchSource& source, u64 total_reads_hint,
                             const ProgressCallback& callback);

  /// Creates the worker pool and per-worker workspaces on first use.
  void ensure_workers();
  /// Creates (or grows) the recycled batch-slot ring.
  void ensure_stream_slots(usize count);

  const GenomeIndex* index_;
  const Annotation* annotation_;
  EngineConfig config_;
  /// Exon-interval tables are built once and shared by every run.
  std::unique_ptr<GeneCounter> counter_;
  /// Lazily created on the first multi-threaded run; reused thereafter.
  std::unique_ptr<ThreadPool> pool_;
  /// One workspace per worker slot (num_threads of them), reused run to
  /// run so steady-state alignment stops allocating.
  std::vector<std::unique_ptr<AlignWorkspace>> workspaces_;
  /// Recycled streaming batch slots (arena + per-batch accumulators),
  /// reused across run_stream calls so steady-state ingest stops
  /// allocating.
  std::vector<std::unique_ptr<StreamSlot>> stream_slots_;
};

}  // namespace staratlas
