// AlignmentEngine: multi-threaded alignment of a whole ReadSet with
// progress callbacks and cooperative abort — the hook the paper's
// early-stopping optimization attaches to.
//
// The engine is built for reuse across samples: its worker thread pool and
// per-worker AlignWorkspaces are created on the first run() and kept for
// the engine's lifetime, so a 1000-sample campaign pays thread spawn and
// scratch allocation once, not per sample (the compute analog of STAR's
// --genomeLoad LoadAndKeep).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "align/aligner.h"
#include "align/gene_counts.h"
#include "align/junctions.h"
#include "align/params.h"
#include "align/progress.h"
#include "align/record.h"
#include "align/workspace.h"
#include "common/thread_pool.h"
#include "genome/annotation.h"
#include "index/genome_index.h"
#include "io/fastq.h"

namespace staratlas {

enum class EngineCommand { kContinue, kAbort };

/// Invoked (serialized) whenever `progress_check_interval` more reads have
/// completed. Returning kAbort stops the run promptly (chunk granularity).
using ProgressCallback = std::function<EngineCommand(const ProgressSnapshot&)>;

struct EngineConfig {
  AlignerParams params;
  usize num_threads = 1;
  usize chunk_size = 256;  ///< reads per work unit
  /// Reads between progress-callback invocations; 0 = total/50.
  u64 progress_check_interval = 0;
  bool quant_gene_counts = true;
  /// Collect splice junctions (SJ.out.tab equivalent).
  bool collect_junctions = false;
  /// Minimum genomic gap treated as an intron when collecting junctions.
  u64 junction_min_intron = 21;
};

struct AlignmentRun {
  MappingStats stats;
  GeneCountsTable gene_counts;  ///< empty when quant_gene_counts is false
  /// Per-read outcomes, index-aligned with the input. On an aborted run,
  /// entries for unprocessed reads stay kUnmapped; stats.processed is
  /// authoritative.
  std::vector<ReadOutcome> outcomes;
  /// Splice junctions (empty unless collect_junctions was set).
  std::vector<Junction> junctions;
  ProgressLog progress_log;
  bool aborted = false;
  double wall_seconds = 0.0;  ///< measured real time of the run
};

class AlignmentEngine {
 public:
  /// `annotation` may be null when gene counting is disabled.
  AlignmentEngine(const GenomeIndex& index, const Annotation* annotation,
                  EngineConfig config);

  const EngineConfig& config() const { return config_; }

  /// Aligns the read set. Deterministic in its statistics regardless of
  /// thread count; abort timing has chunk granularity. Not reentrant: one
  /// run() at a time per engine (the worker pool and workspaces are
  /// engine-owned and reused run to run).
  AlignmentRun run(const ReadSet& reads, const ProgressCallback& callback = {});

 private:
  /// Creates the worker pool and per-worker workspaces on first use.
  void ensure_workers();

  const GenomeIndex* index_;
  const Annotation* annotation_;
  EngineConfig config_;
  /// Exon-interval tables are built once and shared by every run.
  std::unique_ptr<GeneCounter> counter_;
  /// Lazily created on the first multi-threaded run; reused thereafter.
  std::unique_ptr<ThreadPool> pool_;
  /// One workspace per worker slot (num_threads of them), reused run to
  /// run so steady-state alignment stops allocating.
  std::vector<std::unique_ptr<AlignWorkspace>> workspaces_;
};

}  // namespace staratlas
