// AlignmentEngine: multi-threaded alignment of a whole ReadSet with
// progress callbacks and cooperative abort — the hook the paper's
// early-stopping optimization attaches to.
#pragma once

#include <functional>

#include "align/aligner.h"
#include "align/gene_counts.h"
#include "align/junctions.h"
#include "align/params.h"
#include "align/progress.h"
#include "align/record.h"
#include "genome/annotation.h"
#include "index/genome_index.h"
#include "io/fastq.h"

namespace staratlas {

enum class EngineCommand { kContinue, kAbort };

/// Invoked (serialized) whenever `progress_check_interval` more reads have
/// completed. Returning kAbort stops the run promptly (chunk granularity).
using ProgressCallback = std::function<EngineCommand(const ProgressSnapshot&)>;

struct EngineConfig {
  AlignerParams params;
  usize num_threads = 1;
  usize chunk_size = 256;  ///< reads per work unit
  /// Reads between progress-callback invocations; 0 = total/50.
  u64 progress_check_interval = 0;
  bool quant_gene_counts = true;
  /// Collect splice junctions (SJ.out.tab equivalent).
  bool collect_junctions = false;
  /// Minimum genomic gap treated as an intron when collecting junctions.
  u64 junction_min_intron = 21;
};

struct AlignmentRun {
  MappingStats stats;
  GeneCountsTable gene_counts;  ///< empty when quant_gene_counts is false
  /// Per-read outcomes, index-aligned with the input. On an aborted run,
  /// entries for unprocessed reads stay kUnmapped; stats.processed is
  /// authoritative.
  std::vector<ReadOutcome> outcomes;
  /// Splice junctions (empty unless collect_junctions was set).
  std::vector<Junction> junctions;
  ProgressLog progress_log;
  bool aborted = false;
  double wall_seconds = 0.0;  ///< measured real time of the run
};

class AlignmentEngine {
 public:
  /// `annotation` may be null when gene counting is disabled.
  AlignmentEngine(const GenomeIndex& index, const Annotation* annotation,
                  EngineConfig config);

  const EngineConfig& config() const { return config_; }

  /// Aligns the read set. Deterministic in its statistics regardless of
  /// thread count; abort timing has chunk granularity.
  AlignmentRun run(const ReadSet& reads,
                   const ProgressCallback& callback = {}) const;

 private:
  const GenomeIndex* index_;
  const Annotation* annotation_;
  EngineConfig config_;
};

}  // namespace staratlas
