#include "align/aligner.h"

#include <algorithm>

#include "align/seed.h"
#include "common/error.h"
#include "index/packed_sequence.h"

namespace staratlas {

void Aligner::align(std::string_view read, AlignWorkspace& ws,
                    MappingStats& work, ReadAlignment& result) const {
  result.reset();
  if (read.empty()) return;

  ExtendStats extend_stats;
  ws.hits.clear();

  // Forward orientation.
  find_seeds(*index_, read, params_, ws.seeds);
  work.seeds_generated += ws.seeds.seeds.size();
  work.bases_compared += ws.seeds.chars_matched;
  score_windows(*index_, read, ws.seeds.seeds, /*reverse=*/false, params_,
                extend_stats, ws.extend, ws.hits);

  // Reverse complement.
  reverse_complement(read, ws.rc);
  find_seeds(*index_, ws.rc, params_, ws.seeds);
  work.seeds_generated += ws.seeds.seeds.size();
  work.bases_compared += ws.seeds.chars_matched;
  score_windows(*index_, ws.rc, ws.seeds.seeds, /*reverse=*/true, params_,
                extend_stats, ws.extend, ws.hits);

  classify(read, extend_stats, ws, work, result);
}

void Aligner::finish_read(std::string_view read, std::string_view rc,
                          const SeedSearchResult& fwd_seeds,
                          const SeedSearchResult& rev_seeds,
                          AlignWorkspace& ws, MappingStats& work,
                          ReadAlignment& result) const {
  result.reset();
  if (read.empty()) return;

  ExtendStats extend_stats;
  ws.hits.clear();

  work.seeds_generated += fwd_seeds.seeds.size();
  work.bases_compared += fwd_seeds.chars_matched;
  score_windows(*index_, read, fwd_seeds.seeds, /*reverse=*/false, params_,
                extend_stats, ws.extend, ws.hits);

  work.seeds_generated += rev_seeds.seeds.size();
  work.bases_compared += rev_seeds.chars_matched;
  score_windows(*index_, rc, rev_seeds.seeds, /*reverse=*/true, params_,
                extend_stats, ws.extend, ws.hits);

  classify(read, extend_stats, ws, work, result);
}

void Aligner::classify(std::string_view read, const ExtendStats& extend_stats,
                       AlignWorkspace& ws, MappingStats& work,
                       ReadAlignment& result) const {
  work.windows_scored += extend_stats.windows_scored;
  work.bases_compared += extend_stats.bases_compared;
  result.repetitive_capped = extend_stats.capped;

  if (ws.hits.empty()) {
    result.outcome = ReadOutcome::kUnmapped;
    return;
  }

  // Sort a permutation rather than the hits themselves: hits carry inline
  // segment storage, so moving them during the sort would memcpy ~100
  // bytes per swap — ruinous on repeat-heavy reads with thousands of
  // candidates. Only the (at most nmax) kept hits are moved at the end.
  const u32 num_hits = static_cast<u32>(ws.hits.size());
  ws.hit_order.resize(num_hits);
  for (u32 i = 0; i < num_hits; ++i) ws.hit_order[i] = i;
  std::sort(ws.hit_order.begin(), ws.hit_order.end(),
            [&hits = ws.hits](u32 ia, u32 ib) {
              const AlignmentHit& a = hits[ia];
              const AlignmentHit& b = hits[ib];
              if (a.score != b.score) return a.score > b.score;
              if (a.text_pos != b.text_pos) return a.text_pos < b.text_pos;
              return ia < ib;  // total order: fully deterministic
            });
  const u32 best_score = ws.hits[ws.hit_order.front()].score;
  result.best_score = best_score;

  const u32 min_score = static_cast<u32>(
      params_.min_matched_fraction * static_cast<double>(read.size()));
  if (best_score < min_score) {
    result.outcome = ReadOutcome::kUnmapped;
    return;
  }

  // Loci within the multimap score range of the best count as alignments.
  const u32 floor_score = best_score > params_.multimap_score_range
                              ? best_score - params_.multimap_score_range
                              : 0;
  u32 num_loci = 0;
  for (const auto& hit : ws.hits) {
    if (hit.score >= floor_score) ++num_loci;
  }
  result.num_loci = num_loci;

  if (num_loci > params_.multimap_nmax) {
    result.outcome = ReadOutcome::kTooManyLoci;
    return;  // STAR drops the alignments of too-many-loci reads
  }
  result.outcome = num_loci == 1 ? ReadOutcome::kUniqueMapped
                                 : ReadOutcome::kMultiMapped;
  const usize keep = std::min<usize>(num_loci, ws.hits.size());
  for (usize i = 0; i < keep; ++i) {
    result.hits.push_back(std::move(ws.hits[ws.hit_order[i]]));
  }
}

void Aligner::align_batch(std::span<const std::string_view> reads,
                          AlignWorkspace& ws, MappingStats& work,
                          std::span<ReadAlignment> results) const {
  STARATLAS_CHECK(reads.size() == results.size());
  AlignBatchLanes& lanes = ws.batch;
  const usize n = reads.size();
  if (n == 0) return;

  // Phase 1 — batched seed search. Every read contributes two walks
  // (forward and reverse complement); all 2n walks advance together so
  // the index probes overlap across the batch.
  if (lanes.rc.size() < n) lanes.rc.resize(n);
  if (lanes.seeds.size() < 2 * n) lanes.seeds.resize(2 * n);
  lanes.walks.clear();
  for (usize i = 0; i < n; ++i) {
    reverse_complement(reads[i], lanes.rc[i]);
    lanes.walks.push_back(reads[i]);
    lanes.walks.push_back(lanes.rc[i]);
  }
  find_seeds_batch(*index_, lanes.walks, params_,
                   std::span(lanes.seeds).first(2 * n), lanes.scratch);

  // Phase 2 — per-read finish: extension, scoring and classification are
  // branchy and already cache-friendly, so they stay sequential.
  for (usize i = 0; i < n; ++i) {
    finish_read(reads[i], lanes.rc[i], lanes.seeds[2 * i],
                lanes.seeds[2 * i + 1], ws, work, results[i]);
  }
}

ReadAlignment Aligner::align(std::string_view read, MappingStats& work) const {
  AlignWorkspace ws;
  ReadAlignment result;
  align(read, ws, work, result);
  return result;
}

}  // namespace staratlas
