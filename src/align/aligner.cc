#include "align/aligner.h"

#include <algorithm>

#include "align/seed.h"
#include "index/packed_sequence.h"

namespace staratlas {

ReadAlignment Aligner::align(std::string_view read, MappingStats& work) const {
  ReadAlignment result;
  if (read.empty()) return result;

  ExtendStats extend_stats;
  std::vector<AlignmentHit> hits;

  // Forward orientation.
  {
    const SeedSearchResult seeds = find_seeds(*index_, read, params_);
    work.seeds_generated += seeds.seeds.size();
    work.bases_compared += seeds.chars_matched;
    auto forward_hits = score_windows(*index_, read, seeds.seeds,
                                      /*reverse=*/false, params_, extend_stats);
    hits.insert(hits.end(), std::make_move_iterator(forward_hits.begin()),
                std::make_move_iterator(forward_hits.end()));
  }
  // Reverse complement.
  {
    const std::string rc = reverse_complement(read);
    const SeedSearchResult seeds = find_seeds(*index_, rc, params_);
    work.seeds_generated += seeds.seeds.size();
    work.bases_compared += seeds.chars_matched;
    auto reverse_hits = score_windows(*index_, rc, seeds.seeds,
                                      /*reverse=*/true, params_, extend_stats);
    hits.insert(hits.end(), std::make_move_iterator(reverse_hits.begin()),
                std::make_move_iterator(reverse_hits.end()));
  }
  work.windows_scored += extend_stats.windows_scored;
  work.bases_compared += extend_stats.bases_compared;
  result.repetitive_capped = extend_stats.capped;

  if (hits.empty()) {
    result.outcome = ReadOutcome::kUnmapped;
    return result;
  }

  std::sort(hits.begin(), hits.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.text_pos < b.text_pos;  // deterministic tie-break
            });
  const u32 best_score = hits.front().score;
  result.best_score = best_score;

  const u32 min_score = static_cast<u32>(
      params_.min_matched_fraction * static_cast<double>(read.size()));
  if (best_score < min_score) {
    result.outcome = ReadOutcome::kUnmapped;
    return result;
  }

  // Loci within the multimap score range of the best count as alignments.
  const u32 floor_score = best_score > params_.multimap_score_range
                              ? best_score - params_.multimap_score_range
                              : 0;
  u32 num_loci = 0;
  for (const auto& hit : hits) {
    if (hit.score >= floor_score) ++num_loci;
  }
  result.num_loci = num_loci;

  if (num_loci > params_.multimap_nmax) {
    result.outcome = ReadOutcome::kTooManyLoci;
    return result;  // STAR drops the alignments of too-many-loci reads
  }
  result.outcome = num_loci == 1 ? ReadOutcome::kUniqueMapped
                                 : ReadOutcome::kMultiMapped;
  const usize keep = std::min<usize>(num_loci, hits.size());
  result.hits.assign(std::make_move_iterator(hits.begin()),
                     std::make_move_iterator(hits.begin() + static_cast<i64>(keep)));
  return result;
}

}  // namespace staratlas
