// --quantMode GeneCounts: per-gene unique-read counting, mirroring STAR's
// ReadsPerGene.out.tab (unstranded column).
#pragma once

#include <iosfwd>
#include <vector>

#include "align/record.h"
#include "common/types.h"
#include "genome/annotation.h"
#include "index/genome_index.h"

namespace staratlas {

struct GeneCountsTable {
  std::vector<u64> per_gene;  ///< indexed by GeneId
  u64 n_unmapped = 0;
  u64 n_multimapping = 0;  ///< includes too-many-loci reads, like STAR
  u64 n_no_feature = 0;
  u64 n_ambiguous = 0;

  GeneCountsTable() = default;
  explicit GeneCountsTable(usize num_genes) : per_gene(num_genes, 0) {}

  u64 total_counted() const;
  /// Element-wise accumulate. Both tables must have the same gene
  /// dimension (the annotation-identity proxy); mismatches throw
  /// InternalError rather than silently resizing and miscounting.
  GeneCountsTable& operator+=(const GeneCountsTable& other);

  /// ReadsPerGene.out.tab-style TSV (N_* rows first, then one row per gene).
  void write_tsv(std::ostream& out, const Annotation& annotation) const;
};

/// Assigns unique alignments to genes via exon-overlap lookup.
class GeneCounter {
 public:
  GeneCounter(const Annotation& annotation, const GenomeIndex& index);

  /// Updates `table` with one read's alignment outcome.
  void count(const ReadAlignment& alignment, GeneCountsTable& table) const;

  /// Genes whose exons overlap [start, end) on `contig` (0-based).
  std::vector<GeneId> genes_overlapping(ContigId contig, u64 start,
                                        u64 end) const;

 private:
  struct ExonInterval {
    u64 start;
    u64 end;
    GeneId gene;
  };
  const GenomeIndex* index_;
  usize num_genes_ = 0;
  std::vector<std::vector<ExonInterval>> by_contig_;  ///< sorted by start
  std::vector<u64> max_exon_length_;  ///< per contig, bounds the back-scan
};

}  // namespace staratlas
