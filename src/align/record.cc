#include "align/record.h"

namespace staratlas {

const char* read_outcome_name(ReadOutcome outcome) {
  switch (outcome) {
    case ReadOutcome::kUniqueMapped: return "unique";
    case ReadOutcome::kMultiMapped: return "multi";
    case ReadOutcome::kTooManyLoci: return "too_many_loci";
    case ReadOutcome::kUnmapped: return "unmapped";
  }
  return "?";
}

void MappingStats::add_outcome(ReadOutcome outcome) {
  ++processed;
  switch (outcome) {
    case ReadOutcome::kUniqueMapped: ++unique; break;
    case ReadOutcome::kMultiMapped: ++multi; break;
    case ReadOutcome::kTooManyLoci: ++too_many; break;
    case ReadOutcome::kUnmapped: ++unmapped; break;
  }
}

MappingStats& MappingStats::operator+=(const MappingStats& other) {
  processed += other.processed;
  unique += other.unique;
  multi += other.multi;
  too_many += other.too_many;
  unmapped += other.unmapped;
  seeds_generated += other.seeds_generated;
  windows_scored += other.windows_scored;
  bases_compared += other.bases_compared;
  return *this;
}

}  // namespace staratlas
