// Paired-end alignment: mates are aligned independently, then candidate
// placements are paired under the standard FR-orientation constraints
// (same contig, opposite strands, bounded genomic span). Mirrors STAR's
// paired handling at the level this pipeline needs.
#pragma once

#include <string_view>

#include "align/aligner.h"
#include "common/types.h"

namespace staratlas {

enum class PairOutcome : u8 {
  kConcordantUnique = 0,  ///< exactly one concordant pair placement
  kConcordantMulti = 1,   ///< several concordant placements
  kDiscordant = 2,        ///< both mates map, no concordant placement
  kOneMateMapped = 3,
  kUnmapped = 4,
};

const char* pair_outcome_name(PairOutcome outcome);

struct PairedAlignment {
  PairOutcome outcome = PairOutcome::kUnmapped;
  u32 num_pairs = 0;        ///< concordant placements within score range
  u32 best_pair_score = 0;  ///< sum of mate scores of the best placement
  AlignmentHit hit1;        ///< valid when outcome is concordant
  AlignmentHit hit2;
  ReadAlignment mate1;      ///< full single-end results (hits capped)
  ReadAlignment mate2;
};

struct PairedStats {
  u64 pairs = 0;
  u64 concordant_unique = 0;
  u64 concordant_multi = 0;
  u64 discordant = 0;
  u64 one_mate = 0;
  u64 unmapped = 0;

  void add(PairOutcome outcome);
  /// Mapped rate in the paired sense: concordant pairs over all pairs.
  double concordant_rate() const {
    return pairs == 0 ? 0.0
                      : static_cast<double>(concordant_unique +
                                            concordant_multi) /
                            static_cast<double>(pairs);
  }
};

struct PairedParams {
  AlignerParams single;
  /// Maximum genomic span of a proper pair (fragment + spliced introns;
  /// STAR bounds this with winBinNbits windows).
  u64 max_fragment_span = 50'000;
  /// Pair placements within this of the best pair score count as loci.
  u32 pair_score_range = 2;
};

class PairedAligner {
 public:
  PairedAligner(const GenomeIndex& index, const PairedParams& params)
      : aligner_(index, params.single), params_(params) {}

  /// Aligns one read pair (mate2 given in sequencing orientation, i.e.
  /// reverse-complement of the fragment's far end).
  PairedAlignment align_pair(std::string_view mate1, std::string_view mate2,
                             MappingStats& work) const;

 private:
  Aligner aligner_;
  PairedParams params_;
};

}  // namespace staratlas
