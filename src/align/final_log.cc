#include "align/final_log.h"

#include <cstdio>

namespace staratlas {

namespace {
void row(std::string& out, const char* label, const std::string& value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%42s |\t%s\n", label, value.c_str());
  out += buf;
}
std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", 100.0 * fraction);
  return buf;
}
}  // namespace

std::string render_final_log(const AlignmentRun& run, u64 input_reads,
                             double mean_read_length) {
  const MappingStats& stats = run.stats;
  const double processed = static_cast<double>(
      stats.processed == 0 ? 1 : stats.processed);
  std::string out;
  out += "                          staratlas Log.final.out\n";
  row(out, "Number of input reads", std::to_string(input_reads));
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", mean_read_length);
    row(out, "Average input read length", buf);
  }
  row(out, "Reads processed", std::to_string(stats.processed));
  out += "                            UNIQUE READS:\n";
  row(out, "Uniquely mapped reads number", std::to_string(stats.unique));
  row(out, "Uniquely mapped reads %",
      pct(static_cast<double>(stats.unique) / processed));
  out += "                            MULTI-MAPPING READS:\n";
  row(out, "Number of reads mapped to multiple loci",
      std::to_string(stats.multi));
  row(out, "% of reads mapped to multiple loci",
      pct(static_cast<double>(stats.multi) / processed));
  row(out, "Number of reads mapped to too many loci",
      std::to_string(stats.too_many));
  row(out, "% of reads mapped to too many loci",
      pct(static_cast<double>(stats.too_many) / processed));
  out += "                            UNMAPPED READS:\n";
  row(out, "Number of unmapped reads", std::to_string(stats.unmapped));
  row(out, "% of reads unmapped",
      pct(static_cast<double>(stats.unmapped) / processed));
  out += "                            SPEED:\n";
  {
    // Always emitted, 0.00 when unmeasurable: the log's line count must
    // not depend on whether wall time was captured, or merged shard logs
    // and zero-read shards change shape vs the unsharded log.
    char buf[48];
    const double speed = run.wall_seconds > 0.0
                             ? static_cast<double>(stats.processed) / 1e6 /
                                   (run.wall_seconds / 3600.0)
                             : 0.0;
    std::snprintf(buf, sizeof(buf), "%.2f", speed);
    row(out, "Mapping speed, Million of reads per hour", buf);
  }
  if (run.aborted) {
    out += "                            NOTE:\n";
    row(out, "Run terminated early (early stopping)", "yes");
  }
  return out;
}

}  // namespace staratlas
