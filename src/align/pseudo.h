// Transcriptome pseudo-aligner — the Salmon/kallisto-style BASELINE the
// paper's conclusion contrasts STAR with: "other (pseudo)aligners should
// also provide the current mapping rate value (e.g. Salmon does not)".
//
// Reads are assigned to transcripts by k-mer compatibility (the
// intersection of the transcripts containing the read's k-mers), without
// base-level alignment. It is much faster than the full aligner and
// produces transcript counts, but — faithfully to the paper's complaint —
// its natural output lacks positional alignments; we expose a mapping
// rate anyway to demonstrate what the paper asks pseudo-aligner authors
// to add.
#pragma once

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "genome/annotation.h"
#include "genome/model.h"

namespace staratlas {

struct PseudoParams {
  u32 k = 21;  ///< k-mer length
  /// Fraction of a read's k-mers that must agree on >=1 transcript.
  double min_compatible_fraction = 0.5;
};

struct PseudoResult {
  bool mapped = false;
  std::vector<GeneId> compatible;  ///< genes in the compatibility set
};

struct PseudoStats {
  u64 processed = 0;
  u64 mapped = 0;
  u64 unique_gene = 0;  ///< compatibility set collapsed to one gene
  std::vector<u64> gene_counts;

  double mapped_rate() const {
    return processed == 0
               ? 0.0
               : static_cast<double>(mapped) / static_cast<double>(processed);
  }
};

class PseudoAligner {
 public:
  /// Builds the transcriptome k-mer map from spliced transcripts.
  PseudoAligner(const Assembly& assembly, const Annotation& annotation,
                const PseudoParams& params = {});

  /// Classifies one read (checks both orientations).
  PseudoResult classify(std::string_view read) const;

  /// Classifies a batch, accumulating stats and per-gene counts (reads
  /// with a single-gene compatibility set).
  PseudoStats run(const std::vector<std::string>& reads) const;

  usize num_kmers() const { return kmer_to_genes_.size(); }
  const PseudoParams& params() const { return params_; }

 private:
  bool kmer_genes(std::string_view kmer, std::vector<GeneId>& out) const;

  PseudoParams params_;
  usize num_genes_ = 0;
  /// k-mer code -> sorted unique gene ids containing it.
  std::unordered_map<u64, std::vector<GeneId>> kmer_to_genes_;
};

}  // namespace staratlas
