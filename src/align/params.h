// Aligner tuning parameters, named after their STAR counterparts where one
// exists. Defaults mirror STAR's spirit at our read scale (100 bp reads,
// MiB genomes).
#pragma once

#include "common/types.h"

namespace staratlas {

struct AlignerParams {
  /// Minimum MMP length to use as a seed.
  usize seed_min_length = 18;
  /// Maximum MMP restarts per read per strand.
  usize max_seeds_per_read = 16;
  /// STAR's seedSearchStartLmax: a fresh MMP search starts at every
  /// multiple of this offset along the read (in addition to the restart
  /// after each MMP), so long error-free reads still produce multiple
  /// seeds per strand.
  usize seed_search_start_lmax = 50;
  /// Loci enumerated per seed; hyper-repetitive seeds are capped here and
  /// the read is flagged repetitive. Like STAR, this is large: repetitive
  /// seeds genuinely cost enumeration + clustering work, which is exactly
  /// what makes repeat-laden (release-108-style) indices slow.
  u32 anchor_max_loci = 4096;
  /// Loci fed to one window's stitching DP (STAR: seedPerWindowNmax family).
  u32 window_loci_cap = 640;
  /// Maximum reported loci before a read becomes "too many loci"
  /// (STAR: outFilterMultimapNmax; 50 matches the ENCODE long-RNA setting
  /// and keeps multimappers *mapped* on scaffold-heavy assemblies).
  u32 multimap_nmax = 50;
  /// Loci scoring within this of the best are counted as alignments
  /// (STAR: outFilterMultimapScoreRange).
  u32 multimap_score_range = 2;
  /// Minimum matched-bases fraction of read length to call a read mapped
  /// (STAR: outFilterMatchNminOverLread).
  double min_matched_fraction = 0.66;
  /// Maximum genomic gap bridged when stitching seeds (intron cap;
  /// STAR: alignIntronMax).
  u64 max_intron = 30'000;
  /// X-drop threshold for end extension.
  int xdrop = 8;
};

}  // namespace staratlas
