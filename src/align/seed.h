// Seed search: STAR's Maximal Mappable Prefix walk over a read.
//
// Starting at read offset 0, find the longest prefix of the remaining read
// that occurs in the genome (via the suffix-array index). Record it as a
// seed if long enough, then restart just past it. Splice junctions and
// sequencing errors naturally split a read into multiple seeds.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "align/params.h"
#include "common/types.h"
#include "index/genome_index.h"

namespace staratlas {

struct Seed {
  u64 read_offset = 0;
  u64 length = 0;
  SaInterval interval;  ///< suffix-array rows of the seed's occurrences
};

struct SeedSearchResult {
  std::vector<Seed> seeds;
  u64 mmp_calls = 0;      ///< MMP invocations performed (work accounting)
  u64 chars_matched = 0;  ///< total matched characters across MMPs
  /// Scratch: one byte per read offset, set where a seed was recorded.
  /// Replaces the old O(seeds) linear dedupe scan with an O(1) probe and
  /// is reused (capacity and all) across reads by the alignment workspace.
  std::vector<u8> offset_seeded;

  /// Empties the result for a fresh read of `read_length` bases without
  /// releasing any capacity.
  void clear(usize read_length) {
    seeds.clear();
    mmp_calls = 0;
    chars_matched = 0;
    offset_seeded.assign(read_length, 0);
  }
};

/// Runs the MMP walk over `read` against `index`, writing into `result`
/// (cleared first; buffers are reused). This is the hot-path interface —
/// steady-state it performs no heap allocations.
void find_seeds(const GenomeIndex& index, std::string_view read,
                const AlignerParams& params, SeedSearchResult& result);

/// Convenience form that returns a fresh result (allocates; tests/tools).
SeedSearchResult find_seeds(const GenomeIndex& index, std::string_view read,
                            const AlignerParams& params);

/// Walk-state buffers for find_seeds_batch, reused batch after batch so
/// the steady state allocates nothing. Owned by AlignWorkspace.
struct SeedBatchScratch {
  std::vector<u32> ready;   ///< walks whose next restart is pending
  std::vector<u64> grid;    ///< per-walk: current restart-grid boundary
  std::vector<u64> offset;  ///< per-walk: current MMP start offset
};

/// Batched find_seeds: runs the MMP walk of every read in `reads`, writing
/// results[i] for reads[i]. Each result is bit-identical to a find_seeds
/// call on that read alone — same seeds, same mmp_calls/chars_matched
/// accounting — but the walks advance together as a feed into
/// GenomeIndex::mmp_batch_stream, so the dependent suffix-array loads
/// that serialize a lone walk overlap across up to 64 in-flight walks,
/// and a walk's next restart re-enters the lanes the moment its previous
/// MMP resolves. Steady-state it performs no heap allocations.
/// `reads.size()` must equal `results.size()`.
void find_seeds_batch(const GenomeIndex& index,
                      std::span<const std::string_view> reads,
                      const AlignerParams& params,
                      std::span<SeedSearchResult> results,
                      SeedBatchScratch& scratch);

}  // namespace staratlas
