// Seed search: STAR's Maximal Mappable Prefix walk over a read.
//
// Starting at read offset 0, find the longest prefix of the remaining read
// that occurs in the genome (via the suffix-array index). Record it as a
// seed if long enough, then restart just past it. Splice junctions and
// sequencing errors naturally split a read into multiple seeds.
#pragma once

#include <string_view>
#include <vector>

#include "align/params.h"
#include "common/types.h"
#include "index/genome_index.h"

namespace staratlas {

struct Seed {
  u64 read_offset = 0;
  u64 length = 0;
  SaInterval interval;  ///< suffix-array rows of the seed's occurrences
};

struct SeedSearchResult {
  std::vector<Seed> seeds;
  u64 mmp_calls = 0;      ///< MMP invocations performed (work accounting)
  u64 chars_matched = 0;  ///< total matched characters across MMPs
  /// Scratch: one byte per read offset, set where a seed was recorded.
  /// Replaces the old O(seeds) linear dedupe scan with an O(1) probe and
  /// is reused (capacity and all) across reads by the alignment workspace.
  std::vector<u8> offset_seeded;

  /// Empties the result for a fresh read of `read_length` bases without
  /// releasing any capacity.
  void clear(usize read_length) {
    seeds.clear();
    mmp_calls = 0;
    chars_matched = 0;
    offset_seeded.assign(read_length, 0);
  }
};

/// Runs the MMP walk over `read` against `index`, writing into `result`
/// (cleared first; buffers are reused). This is the hot-path interface —
/// steady-state it performs no heap allocations.
void find_seeds(const GenomeIndex& index, std::string_view read,
                const AlignerParams& params, SeedSearchResult& result);

/// Convenience form that returns a fresh result (allocates; tests/tools).
SeedSearchResult find_seeds(const GenomeIndex& index, std::string_view read,
                            const AlignerParams& params);

}  // namespace staratlas
