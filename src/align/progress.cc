#include "align/progress.h"

#include <cstdio>

namespace staratlas {

void ProgressTracker::add(const MappingStats& chunk) {
  processed_.fetch_add(chunk.processed, std::memory_order_relaxed);
  unique_.fetch_add(chunk.unique, std::memory_order_relaxed);
  multi_.fetch_add(chunk.multi, std::memory_order_relaxed);
  too_many_.fetch_add(chunk.too_many, std::memory_order_relaxed);
  unmapped_.fetch_add(chunk.unmapped, std::memory_order_relaxed);
}

ProgressSnapshot ProgressTracker::snapshot(double elapsed_seconds) const {
  ProgressSnapshot snap;
  snap.total_reads = total_reads_;
  snap.processed = processed_.load(std::memory_order_relaxed);
  snap.unique = unique_.load(std::memory_order_relaxed);
  snap.multi = multi_.load(std::memory_order_relaxed);
  snap.too_many = too_many_.load(std::memory_order_relaxed);
  snap.unmapped = unmapped_.load(std::memory_order_relaxed);
  snap.elapsed_seconds = elapsed_seconds;
  return snap;
}

void ProgressLog::append(const ProgressSnapshot& snapshot) {
  entries_.push_back(snapshot);
}

std::string ProgressLog::render() const {
  std::string out =
      "      Reads processed   %complete      %mapped(U+M)   %unique\n";
  char line[128];
  for (const auto& snap : entries_) {
    const double unique_rate =
        snap.processed == 0 ? 0.0
                            : 100.0 * static_cast<double>(snap.unique) /
                                  static_cast<double>(snap.processed);
    std::snprintf(line, sizeof(line), "%20llu   %8.1f%%   %12.1f%%   %6.1f%%\n",
                  static_cast<unsigned long long>(snap.processed),
                  100.0 * snap.fraction_processed(),
                  100.0 * snap.mapped_rate(), unique_rate);
    out += line;
  }
  return out;
}

}  // namespace staratlas
