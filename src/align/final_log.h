// Log.final.out — STAR's end-of-run summary, rendered from a finished
// AlignmentRun.
#pragma once

#include <string>

#include "align/engine.h"

namespace staratlas {

/// STAR-style final summary: input reads, mapping breakdown by class,
/// speed, and early-termination note if the run was aborted.
std::string render_final_log(const AlignmentRun& run, u64 input_reads,
                             double mean_read_length);

}  // namespace staratlas
