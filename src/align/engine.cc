#include "align/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/alloc_counter.h"
#include "common/bounded_queue.h"
#include "common/error.h"

namespace staratlas {

/// One recycled unit of streaming work: a batch arena plus everything a
/// worker accumulates for it, kept per-slot so the committer can merge
/// batches in stream order.
struct AlignmentEngine::StreamSlot {
  ReadBatch batch;
  std::vector<ReadOutcome> outcomes;  ///< batch-local, index-aligned
  MappingStats stats;
  GeneCountsTable counts;  ///< sized num_genes when quant is on
  std::unique_ptr<JunctionCollector> junctions;
  u64 seq = 0;         ///< batch sequence number in stream order
  u64 first_read = 0;  ///< global index of the batch's first read
};

AlignmentEngine::AlignmentEngine(const GenomeIndex& index,
                                 const Annotation* annotation,
                                 EngineConfig config)
    : index_(&index), annotation_(annotation), config_(std::move(config)) {
  STARATLAS_CHECK(config_.num_threads >= 1);
  STARATLAS_CHECK(config_.chunk_size >= 1);
  if (config_.quant_gene_counts) {
    STARATLAS_CHECK(annotation_ != nullptr);
    counter_ = std::make_unique<GeneCounter>(*annotation_, *index_);
  }
}

AlignmentEngine::~AlignmentEngine() = default;

void AlignmentEngine::ensure_workers() {
  if (config_.num_threads > 1 && !pool_) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  while (workspaces_.size() < config_.num_threads) {
    workspaces_.push_back(std::make_unique<AlignWorkspace>());
  }
}

void AlignmentEngine::ensure_stream_slots(usize count) {
  while (stream_slots_.size() < count) {
    auto slot = std::make_unique<StreamSlot>();
    if (counter_) slot->counts = GeneCountsTable(annotation_->num_genes());
    if (config_.collect_junctions) {
      slot->junctions = std::make_unique<JunctionCollector>(
          *index_, config_.junction_min_intron);
    }
    stream_slots_.push_back(std::move(slot));
  }
}

AlignmentRun AlignmentEngine::run_memory(const ReadSet& reads,
                                  const ProgressCallback& callback) {
  const auto wall_start = std::chrono::steady_clock::now();
  AlignmentRun run;
  run.outcomes.assign(reads.size(), ReadOutcome::kUnmapped);
  // Pre-size like run_stream: worker tables merge under the strict
  // equal-dimension contract of GeneCountsTable::operator+=.
  if (counter_) run.gene_counts = GeneCountsTable(annotation_->num_genes());
  if (reads.empty()) return run;

  ensure_workers();

  const u64 check_interval = config_.progress_check_interval
                                 ? config_.progress_check_interval
                                 : std::max<u64>(1, reads.size() / 50);

  const Aligner aligner(*index_, config_.params);
  const GeneCounter* counter = counter_.get();

  JunctionCollector merged_junctions(*index_, config_.junction_min_intron);
  ProgressTracker tracker(reads.size());
  const usize num_chunks =
      (reads.size() + config_.chunk_size - 1) / config_.chunk_size;

  std::atomic<usize> next_chunk{0};
  std::atomic<usize> next_worker_slot{0};
  std::atomic<bool> abort_flag{false};
  std::mutex merge_mu;
  // Next checkpoint boundary. Workers pre-check it lock-free after every
  // chunk; merge_mu is only taken when a boundary has actually been
  // crossed, instead of on every chunk as before.
  std::atomic<u64> next_check{check_interval};

  auto elapsed_secs = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  auto worker = [&] {
    AlignWorkspace& ws =
        *workspaces_[next_worker_slot.fetch_add(1) % workspaces_.size()];
    MappingStats local_stats;
    GeneCountsTable local_counts(counter ? annotation_->num_genes() : 0);
    JunctionCollector local_junctions(*index_, config_.junction_min_intron);
    for (;;) {
      if (abort_flag.load(std::memory_order_relaxed)) break;
      const usize chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      const usize begin = chunk * config_.chunk_size;
      const usize end = std::min(begin + config_.chunk_size, reads.size());

      MappingStats chunk_stats;
      const usize count = end - begin;
      AlignBatchLanes& lanes = ws.batch;
      lanes.views.clear();
      for (usize r = begin; r < end; ++r) {
        lanes.views.push_back(reads.reads[r].sequence);
      }
      if (lanes.results.size() < count) lanes.results.resize(count);
      aligner.align_batch(lanes.views, ws, chunk_stats,
                          std::span(lanes.results).first(count));
      for (usize r = begin; r < end; ++r) {
        const ReadAlignment& result = lanes.results[r - begin];
        chunk_stats.add_outcome(result.outcome);
        run.outcomes[r] = result.outcome;
        if (counter) counter->count(result, local_counts);
        if (config_.collect_junctions) local_junctions.add(result);
      }
      local_stats += chunk_stats;
      tracker.add(chunk_stats);

      // Progress checkpoint: lock-free boundary pre-check, serialized
      // snapshot + callback only on actual crossings.
      if (callback &&
          tracker.processed() >= next_check.load(std::memory_order_relaxed)) {
        std::lock_guard lock(merge_mu);
        const ProgressSnapshot snap = tracker.snapshot(elapsed_secs());
        if (snap.processed >= next_check.load(std::memory_order_relaxed) &&
            !abort_flag.load()) {
          // Advance past every boundary this snapshot crossed so a single
          // large chunk produces one log row, not several duplicates.
          next_check.store(
              (snap.processed / check_interval + 1) * check_interval,
              std::memory_order_relaxed);
          run.progress_log.append(snap);
          if (callback(snap) == EngineCommand::kAbort) {
            abort_flag.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    std::lock_guard lock(merge_mu);
    run.stats += local_stats;
    if (counter) run.gene_counts += local_counts;
    if (config_.collect_junctions) merged_junctions += local_junctions;
  };

  if (config_.num_threads == 1) {
    worker();
  } else {
    // Fan the persistent pool's workers over the chunk queue: one long
    // task per worker, so a run costs task dispatch, not thread spawn.
    std::vector<std::future<void>> futures;
    futures.reserve(config_.num_threads);
    for (usize t = 0; t < config_.num_threads; ++t) {
      futures.push_back(pool_->submit(worker));
    }
    for (auto& f : futures) f.wait();  // all workers park before unwinding
    for (auto& f : futures) f.get();   // then rethrow the first failure
  }

  run.aborted = abort_flag.load();
  run.wall_seconds = elapsed_secs();
  if (config_.collect_junctions) run.junctions = merged_junctions.junctions();
  if (!run.progress_log.entries().empty() || !callback) {
    run.progress_log.append(tracker.snapshot(run.wall_seconds));
  }
  return run;
}

namespace {
/// Zeroes a counts table in place, keeping per_gene capacity.
void reset_counts(GeneCountsTable& counts) {
  std::fill(counts.per_gene.begin(), counts.per_gene.end(), u64{0});
  counts.n_unmapped = 0;
  counts.n_multimapping = 0;
  counts.n_no_feature = 0;
  counts.n_ambiguous = 0;
}
}  // namespace

usize AlignmentEngine::prepare_worker_slots() {
  // Workspaces only — the external scheduler brings its own threads, so
  // spinning up the internal pool here would double the thread count.
  while (workspaces_.size() < config_.num_threads) {
    workspaces_.push_back(std::make_unique<AlignWorkspace>());
  }
  return config_.num_threads;
}

ChunkSink AlignmentEngine::make_chunk_sink() const {
  ChunkSink sink;
  if (counter_) sink.counts = GeneCountsTable(annotation_->num_genes());
  if (config_.collect_junctions) {
    sink.junctions = std::make_unique<JunctionCollector>(
        *index_, config_.junction_min_intron);
  }
  return sink;
}

void AlignmentEngine::align_chunk(const ReadSet& reads, usize begin,
                                  usize end, usize slot, ChunkSink& sink,
                                  std::span<ReadOutcome> outcomes) const {
  STARATLAS_CHECK(slot < workspaces_.size());
  STARATLAS_CHECK(begin <= end && end <= reads.size());
  STARATLAS_CHECK(outcomes.size() >= end - begin);
  sink.stats = MappingStats{};
  if (counter_) reset_counts(sink.counts);
  if (sink.junctions) sink.junctions->clear();

  AlignWorkspace& ws = *workspaces_[slot];
  const Aligner aligner(*index_, config_.params);
  const usize count = end - begin;
  AlignBatchLanes& lanes = ws.batch;
  lanes.views.clear();
  for (usize r = begin; r < end; ++r) {
    lanes.views.push_back(reads.reads[r].sequence);
  }
  if (lanes.results.size() < count) lanes.results.resize(count);
  aligner.align_batch(lanes.views, ws, sink.stats,
                      std::span(lanes.results).first(count));
  for (usize r = 0; r < count; ++r) {
    const ReadAlignment& result = lanes.results[r];
    sink.stats.add_outcome(result.outcome);
    outcomes[r] = result.outcome;
    if (counter_) counter_->count(result, sink.counts);
    if (sink.junctions) sink.junctions->add(result);
  }
}

AlignmentRun AlignmentEngine::run_streaming(const BatchSource& source,
                                         u64 total_reads_hint,
                                         const ProgressCallback& callback) {
  STARATLAS_CHECK(source != nullptr);
  const auto wall_start = std::chrono::steady_clock::now();
  AlignmentRun run;
  run.outcomes.assign(total_reads_hint, ReadOutcome::kUnmapped);

  ensure_workers();
  const usize nslots = std::max<usize>(
      2, config_.stream_queue_depth ? config_.stream_queue_depth
                                    : config_.num_threads + 2);
  ensure_stream_slots(nslots);
  if (counter_) run.gene_counts = GeneCountsTable(annotation_->num_genes());

  const u64 check_interval =
      config_.progress_check_interval
          ? config_.progress_check_interval
          : std::max<u64>(1, total_reads_hint / 50);

  const Aligner aligner(*index_, config_.params);
  JunctionCollector merged_junctions(*index_, config_.junction_min_intron);
  ProgressTracker tracker(total_reads_hint);

  // Slot recycling ring (backpressure) and the parsed-batch work queue.
  // Both hold at most nslots entries, so pushes never block; the producer
  // blocks only in free_q.pop(), i.e. exactly when every slot is in
  // flight — that wait IS the peak-memory bound.
  BoundedQueue<StreamSlot*> free_q(nslots);
  BoundedQueue<StreamSlot*> work_q(nslots);
  for (usize i = 0; i < nslots; ++i) free_q.push(stream_slots_[i].get());

  std::atomic<usize> next_worker_slot{0};
  std::atomic<bool> abort_flag{false};
  std::atomic<u64> consumer_allocs{0};

  // In-order commit state, all guarded by commit_mu. Workers align batches
  // in any order, then park them in the reorder ring; the ring drains
  // strictly in sequence, so merges, checkpoints and the abort decision
  // happen at deterministic read counts whatever the thread count.
  std::mutex commit_mu;
  std::vector<StreamSlot*> reorder(nslots, nullptr);
  u64 commit_next = 0;
  u64 next_check = check_interval;
  std::exception_ptr worker_error;

  auto elapsed_secs = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  auto commit = [&](StreamSlot* done) {
    std::lock_guard lock(commit_mu);
    reorder[done->seq % nslots] = done;
    while (StreamSlot* slot = reorder[commit_next % nslots]) {
      if (slot->seq != commit_next) break;
      reorder[commit_next % nslots] = nullptr;
      ++commit_next;
      if (!abort_flag.load(std::memory_order_relaxed)) {
        const usize n = slot->batch.size();
        if (run.outcomes.size() < slot->first_read + n) {
          run.outcomes.resize(slot->first_read + n, ReadOutcome::kUnmapped);
        }
        std::copy(slot->outcomes.begin(), slot->outcomes.begin() + n,
                  run.outcomes.begin() + slot->first_read);
        run.stats += slot->stats;
        tracker.add(slot->stats);
        if (counter_) run.gene_counts += slot->counts;
        if (slot->junctions) merged_junctions += *slot->junctions;
        ++run.stream_batches;
        if (callback && tracker.processed() >= next_check) {
          const ProgressSnapshot snap = tracker.snapshot(elapsed_secs());
          // Advance past every boundary this commit crossed so one large
          // batch produces one log row, exactly as run() does.
          next_check = (snap.processed / check_interval + 1) * check_interval;
          run.progress_log.append(snap);
          if (callback(snap) == EngineCommand::kAbort) {
            abort_flag.store(true, std::memory_order_relaxed);
          }
        }
      }
      free_q.push(slot);  // recycle even past abort: the producer may be
                          // blocked on a free slot and must wake to exit
    }
  };

  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      u64 seq = 0;
      u64 first_read = 0;
      for (;;) {
        const auto popped = free_q.pop();
        if (!popped) break;
        StreamSlot* slot = *popped;
        if (abort_flag.load(std::memory_order_relaxed)) break;
        slot->batch.clear();
        if (!source(slot->batch) || slot->batch.empty()) break;
        slot->seq = seq++;
        slot->first_read = first_read;
        first_read += slot->batch.size();
        work_q.push(slot);
      }
    } catch (...) {
      producer_error = std::current_exception();
      abort_flag.store(true, std::memory_order_relaxed);
    }
    work_q.close();
  });

  auto consumer = [&] {
    AlignWorkspace& ws =
        *workspaces_[next_worker_slot.fetch_add(1) % workspaces_.size()];
    const u64 allocs_before = alloc_counter::thread_allocations();
    while (const auto popped = work_q.pop()) {
      StreamSlot* slot = *popped;
      if (!abort_flag.load(std::memory_order_relaxed)) {
        try {
          slot->stats = MappingStats{};
          const usize count = slot->batch.size();
          slot->outcomes.resize(count);
          if (counter_) reset_counts(slot->counts);
          if (slot->junctions) slot->junctions->clear();
          AlignBatchLanes& lanes = ws.batch;
          lanes.views.clear();
          for (usize r = 0; r < count; ++r) {
            lanes.views.push_back(slot->batch.sequence(r));
          }
          if (lanes.results.size() < count) lanes.results.resize(count);
          aligner.align_batch(lanes.views, ws, slot->stats,
                              std::span(lanes.results).first(count));
          for (usize r = 0; r < count; ++r) {
            const ReadAlignment& result = lanes.results[r];
            slot->stats.add_outcome(result.outcome);
            slot->outcomes[r] = result.outcome;
            if (counter_) counter_->count(result, slot->counts);
            if (slot->junctions) slot->junctions->add(result);
          }
        } catch (...) {
          std::lock_guard lock(commit_mu);
          if (!worker_error) worker_error = std::current_exception();
          abort_flag.store(true, std::memory_order_relaxed);
        }
      }
      commit(slot);  // always: recycling must not stall behind an abort
    }
    consumer_allocs.fetch_add(
        alloc_counter::thread_allocations() - allocs_before,
        std::memory_order_relaxed);
  };

  if (config_.num_threads == 1) {
    consumer();  // the caller thread aligns; the producer still overlaps
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(config_.num_threads);
    for (usize t = 0; t < config_.num_threads; ++t) {
      futures.push_back(pool_->submit(consumer));
    }
    for (auto& f : futures) f.wait();
    for (auto& f : futures) f.get();
  }
  producer.join();  // already exited: consumers only finish once it closed

  if (producer_error) std::rethrow_exception(producer_error);
  if (worker_error) std::rethrow_exception(worker_error);

  run.aborted = abort_flag.load();
  // A completed stream knows the true total; an aborted one keeps the
  // hint-sized vector (unprocessed tail stays kUnmapped, like run()).
  if (!run.aborted && run.outcomes.size() > run.stats.processed) {
    run.outcomes.resize(run.stats.processed);
  }
  run.wall_seconds = elapsed_secs();
  if (config_.collect_junctions) run.junctions = merged_junctions.junctions();
  if (!run.progress_log.entries().empty() || !callback) {
    run.progress_log.append(tracker.snapshot(run.wall_seconds));
  }
  run.stream_consumer_allocs =
      consumer_allocs.load(std::memory_order_relaxed);
  for (usize i = 0; i < nslots; ++i) {
    run.stream_peak_arena_bytes +=
        stream_slots_[i]->batch.capacity_bytes() +
        stream_slots_[i]->outcomes.capacity() * sizeof(ReadOutcome);
  }
  return run;
}

}  // namespace staratlas
