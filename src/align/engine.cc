#include "align/engine.h"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <vector>

#include "common/error.h"

namespace staratlas {

AlignmentEngine::AlignmentEngine(const GenomeIndex& index,
                                 const Annotation* annotation,
                                 EngineConfig config)
    : index_(&index), annotation_(annotation), config_(std::move(config)) {
  STARATLAS_CHECK(config_.num_threads >= 1);
  STARATLAS_CHECK(config_.chunk_size >= 1);
  if (config_.quant_gene_counts) {
    STARATLAS_CHECK(annotation_ != nullptr);
    counter_ = std::make_unique<GeneCounter>(*annotation_, *index_);
  }
}

void AlignmentEngine::ensure_workers() {
  if (config_.num_threads > 1 && !pool_) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  while (workspaces_.size() < config_.num_threads) {
    workspaces_.push_back(std::make_unique<AlignWorkspace>());
  }
}

AlignmentRun AlignmentEngine::run(const ReadSet& reads,
                                  const ProgressCallback& callback) {
  const auto wall_start = std::chrono::steady_clock::now();
  AlignmentRun run;
  run.outcomes.assign(reads.size(), ReadOutcome::kUnmapped);
  if (reads.empty()) return run;

  ensure_workers();

  const u64 check_interval = config_.progress_check_interval
                                 ? config_.progress_check_interval
                                 : std::max<u64>(1, reads.size() / 50);

  const Aligner aligner(*index_, config_.params);
  const GeneCounter* counter = counter_.get();

  JunctionCollector merged_junctions(*index_, config_.junction_min_intron);
  ProgressTracker tracker(reads.size());
  const usize num_chunks =
      (reads.size() + config_.chunk_size - 1) / config_.chunk_size;

  std::atomic<usize> next_chunk{0};
  std::atomic<usize> next_worker_slot{0};
  std::atomic<bool> abort_flag{false};
  std::mutex merge_mu;
  // Next checkpoint boundary. Workers pre-check it lock-free after every
  // chunk; merge_mu is only taken when a boundary has actually been
  // crossed, instead of on every chunk as before.
  std::atomic<u64> next_check{check_interval};

  auto elapsed_secs = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  auto worker = [&] {
    AlignWorkspace& ws =
        *workspaces_[next_worker_slot.fetch_add(1) % workspaces_.size()];
    MappingStats local_stats;
    GeneCountsTable local_counts(counter ? annotation_->num_genes() : 0);
    JunctionCollector local_junctions(*index_, config_.junction_min_intron);
    for (;;) {
      if (abort_flag.load(std::memory_order_relaxed)) break;
      const usize chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      const usize begin = chunk * config_.chunk_size;
      const usize end = std::min(begin + config_.chunk_size, reads.size());

      MappingStats chunk_stats;
      for (usize r = begin; r < end; ++r) {
        aligner.align(reads.reads[r].sequence, ws, chunk_stats, ws.result);
        chunk_stats.add_outcome(ws.result.outcome);
        run.outcomes[r] = ws.result.outcome;
        if (counter) counter->count(ws.result, local_counts);
        if (config_.collect_junctions) local_junctions.add(ws.result);
      }
      local_stats += chunk_stats;
      tracker.add(chunk_stats);

      // Progress checkpoint: lock-free boundary pre-check, serialized
      // snapshot + callback only on actual crossings.
      if (callback &&
          tracker.processed() >= next_check.load(std::memory_order_relaxed)) {
        std::lock_guard lock(merge_mu);
        const ProgressSnapshot snap = tracker.snapshot(elapsed_secs());
        if (snap.processed >= next_check.load(std::memory_order_relaxed) &&
            !abort_flag.load()) {
          // Advance past every boundary this snapshot crossed so a single
          // large chunk produces one log row, not several duplicates.
          next_check.store(
              (snap.processed / check_interval + 1) * check_interval,
              std::memory_order_relaxed);
          run.progress_log.append(snap);
          if (callback(snap) == EngineCommand::kAbort) {
            abort_flag.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    std::lock_guard lock(merge_mu);
    run.stats += local_stats;
    if (counter) run.gene_counts += local_counts;
    if (config_.collect_junctions) merged_junctions += local_junctions;
  };

  if (config_.num_threads == 1) {
    worker();
  } else {
    // Fan the persistent pool's workers over the chunk queue: one long
    // task per worker, so a run costs task dispatch, not thread spawn.
    std::vector<std::future<void>> futures;
    futures.reserve(config_.num_threads);
    for (usize t = 0; t < config_.num_threads; ++t) {
      futures.push_back(pool_->submit(worker));
    }
    for (auto& f : futures) f.wait();  // all workers park before unwinding
    for (auto& f : futures) f.get();   // then rethrow the first failure
  }

  run.aborted = abort_flag.load();
  run.wall_seconds = elapsed_secs();
  if (config_.collect_junctions) run.junctions = merged_junctions.junctions();
  if (!run.progress_log.entries().empty() || !callback) {
    run.progress_log.append(tracker.snapshot(run.wall_seconds));
  }
  return run;
}

}  // namespace staratlas
