#include "align/engine.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace staratlas {

AlignmentEngine::AlignmentEngine(const GenomeIndex& index,
                                 const Annotation* annotation,
                                 EngineConfig config)
    : index_(&index), annotation_(annotation), config_(std::move(config)) {
  STARATLAS_CHECK(config_.num_threads >= 1);
  STARATLAS_CHECK(config_.chunk_size >= 1);
  if (config_.quant_gene_counts) {
    STARATLAS_CHECK(annotation_ != nullptr);
  }
}

AlignmentRun AlignmentEngine::run(const ReadSet& reads,
                                  const ProgressCallback& callback) const {
  const auto wall_start = std::chrono::steady_clock::now();
  AlignmentRun run;
  run.outcomes.assign(reads.size(), ReadOutcome::kUnmapped);
  if (reads.empty()) return run;

  const u64 check_interval = config_.progress_check_interval
                                 ? config_.progress_check_interval
                                 : std::max<u64>(1, reads.size() / 50);

  const Aligner aligner(*index_, config_.params);
  GeneCounter const* counter = nullptr;
  GeneCounter counter_storage = config_.quant_gene_counts
                                    ? GeneCounter(*annotation_, *index_)
                                    : GeneCounter(Annotation{}, *index_);
  if (config_.quant_gene_counts) counter = &counter_storage;

  JunctionCollector merged_junctions(*index_, config_.junction_min_intron);
  ProgressTracker tracker(reads.size());
  const usize num_chunks =
      (reads.size() + config_.chunk_size - 1) / config_.chunk_size;

  std::atomic<usize> next_chunk{0};
  std::atomic<bool> abort_flag{false};
  std::mutex merge_mu;
  u64 next_check = check_interval;

  auto elapsed_secs = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  auto worker = [&] {
    MappingStats local_stats;
    GeneCountsTable local_counts(
        config_.quant_gene_counts ? annotation_->num_genes() : 0);
    JunctionCollector local_junctions(*index_, config_.junction_min_intron);
    for (;;) {
      if (abort_flag.load(std::memory_order_relaxed)) break;
      const usize chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      const usize begin = chunk * config_.chunk_size;
      const usize end = std::min(begin + config_.chunk_size, reads.size());

      MappingStats chunk_stats;
      for (usize r = begin; r < end; ++r) {
        const ReadAlignment alignment =
            aligner.align(reads.reads[r].sequence, chunk_stats);
        chunk_stats.add_outcome(alignment.outcome);
        run.outcomes[r] = alignment.outcome;
        if (counter) counter->count(alignment, local_counts);
        if (config_.collect_junctions) local_junctions.add(alignment);
      }
      local_stats += chunk_stats;
      tracker.add(chunk_stats);

      // Progress checkpoint: serialized, crossing-triggered.
      if (callback) {
        std::lock_guard lock(merge_mu);
        const ProgressSnapshot snap = tracker.snapshot(elapsed_secs());
        if (snap.processed >= next_check && !abort_flag.load()) {
          // Advance past every boundary this snapshot crossed so a single
          // large chunk produces one log row, not several duplicates.
          next_check =
              (snap.processed / check_interval + 1) * check_interval;
          run.progress_log.append(snap);
          if (callback(snap) == EngineCommand::kAbort) {
            abort_flag.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    std::lock_guard lock(merge_mu);
    run.stats += local_stats;
    if (counter) run.gene_counts += local_counts;
    if (config_.collect_junctions) merged_junctions += local_junctions;
  };

  if (config_.num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(config_.num_threads);
    for (usize t = 0; t < config_.num_threads; ++t) {
      threads.emplace_back(worker);
    }
    for (auto& t : threads) t.join();
  }

  run.aborted = abort_flag.load();
  run.wall_seconds = elapsed_secs();
  if (config_.collect_junctions) run.junctions = merged_junctions.junctions();
  if (!run.progress_log.entries().empty() || !callback) {
    run.progress_log.append(tracker.snapshot(run.wall_seconds));
  }
  return run;
}

}  // namespace staratlas
