// Single-read alignment: seeds both orientations, scores candidate
// windows, and classifies the read (unique / multi / too-many / unmapped)
// with STAR-equivalent filter semantics.
#pragma once

#include <span>
#include <string_view>

#include "align/extend.h"
#include "align/params.h"
#include "align/record.h"
#include "align/workspace.h"
#include "index/genome_index.h"

namespace staratlas {

class Aligner {
 public:
  Aligner(const GenomeIndex& index, const AlignerParams& params)
      : index_(&index), params_(params) {}

  const AlignerParams& params() const { return params_; }
  const GenomeIndex& index() const { return *index_; }

  /// Aligns one read using `ws` for all scratch storage and writing into
  /// `result` (reset first; its hit capacity is reused). Work counters
  /// (seeds/windows/bases) are accumulated into `work`; the outcome
  /// counter is NOT updated here (the engine owns outcome accounting).
  /// This is the hot-path interface: with a warmed workspace and result it
  /// performs zero heap allocations per read. `result` must not alias a
  /// workspace member.
  void align(std::string_view read, AlignWorkspace& ws, MappingStats& work,
             ReadAlignment& result) const;

  /// Batched form of align(): produces per-read results bit-identical to
  /// align() on each read, but runs the whole batch's seed phase first —
  /// all reads' forward and reverse-complement MMP walks advance together
  /// through GenomeIndex::mmp_batch, overlapping the suffix-array cache
  /// misses that dominate alignment time — and only then finishes each
  /// read (extension, scoring, classification) individually. Work counters
  /// accumulate into `work` in read order, exactly as per-read align()
  /// calls would. `results.size()` must equal `reads.size()`; each entry
  /// is reset. Zero steady-state heap allocations with warmed lanes.
  void align_batch(std::span<const std::string_view> reads,
                   AlignWorkspace& ws, MappingStats& work,
                   std::span<ReadAlignment> results) const;

  /// Convenience form with a throwaway workspace (allocates; tests/tools).
  ReadAlignment align(std::string_view read, MappingStats& work) const;

 private:
  /// Shared back half of align()/align_batch(): window scoring for both
  /// orientations' seeds, hit sorting, and outcome classification.
  void finish_read(std::string_view read, std::string_view rc,
                   const SeedSearchResult& fwd_seeds,
                   const SeedSearchResult& rev_seeds, AlignWorkspace& ws,
                   MappingStats& work, ReadAlignment& result) const;

  /// Classification tail shared by align() and finish_read(): folds the
  /// extension counters into `work`, sorts the candidate hits, and
  /// resolves the read's outcome.
  void classify(std::string_view read, const ExtendStats& extend_stats,
                AlignWorkspace& ws, MappingStats& work,
                ReadAlignment& result) const;

  const GenomeIndex* index_;
  AlignerParams params_;
};

}  // namespace staratlas
