// Single-read alignment: seeds both orientations, scores candidate
// windows, and classifies the read (unique / multi / too-many / unmapped)
// with STAR-equivalent filter semantics.
#pragma once

#include <string_view>

#include "align/extend.h"
#include "align/params.h"
#include "align/record.h"
#include "align/workspace.h"
#include "index/genome_index.h"

namespace staratlas {

class Aligner {
 public:
  Aligner(const GenomeIndex& index, const AlignerParams& params)
      : index_(&index), params_(params) {}

  const AlignerParams& params() const { return params_; }
  const GenomeIndex& index() const { return *index_; }

  /// Aligns one read using `ws` for all scratch storage and writing into
  /// `result` (reset first; its hit capacity is reused). Work counters
  /// (seeds/windows/bases) are accumulated into `work`; the outcome
  /// counter is NOT updated here (the engine owns outcome accounting).
  /// This is the hot-path interface: with a warmed workspace and result it
  /// performs zero heap allocations per read. `result` must not alias a
  /// workspace member.
  void align(std::string_view read, AlignWorkspace& ws, MappingStats& work,
             ReadAlignment& result) const;

  /// Convenience form with a throwaway workspace (allocates; tests/tools).
  ReadAlignment align(std::string_view read, MappingStats& work) const;

 private:
  const GenomeIndex* index_;
  AlignerParams params_;
};

}  // namespace staratlas
