// Byte-size value type with binary-unit formatting and parsing.
//
// Cloud genomics is full of "85 GiB index", "15.9 GiB FASTQ" quantities;
// ByteSize keeps them typed instead of raw u64s and formats them the way
// the paper reports them.
#pragma once

#include <string>

#include "common/types.h"

namespace staratlas {

class ByteSize {
 public:
  constexpr ByteSize() = default;
  constexpr explicit ByteSize(u64 bytes) : bytes_(bytes) {}

  static constexpr ByteSize from_kib(double v) { return from_unit(v, 1); }
  static constexpr ByteSize from_mib(double v) { return from_unit(v, 2); }
  static constexpr ByteSize from_gib(double v) { return from_unit(v, 3); }
  static constexpr ByteSize from_tib(double v) { return from_unit(v, 4); }

  constexpr u64 bytes() const { return bytes_; }
  constexpr double kib() const { return static_cast<double>(bytes_) / (1ULL << 10); }
  constexpr double mib() const { return static_cast<double>(bytes_) / (1ULL << 20); }
  constexpr double gib() const { return static_cast<double>(bytes_) / (1ULL << 30); }
  constexpr double tib() const { return static_cast<double>(bytes_) / (1ULL << 40); }

  /// Human-readable string with an auto-selected binary unit, e.g. "29.5 GiB".
  std::string str() const;

  /// Parses strings like "29.5GiB", "512 MiB", "1024" (bytes).
  /// Throws ParseError on malformed input.
  static ByteSize parse(const std::string& text);

  constexpr ByteSize operator+(ByteSize o) const { return ByteSize(bytes_ + o.bytes_); }
  constexpr ByteSize operator-(ByteSize o) const { return ByteSize(bytes_ - o.bytes_); }
  constexpr ByteSize& operator+=(ByteSize o) { bytes_ += o.bytes_; return *this; }
  constexpr ByteSize& operator-=(ByteSize o) { bytes_ -= o.bytes_; return *this; }
  constexpr auto operator<=>(const ByteSize&) const = default;

  friend constexpr ByteSize operator*(ByteSize s, double k) {
    return ByteSize(static_cast<u64>(static_cast<double>(s.bytes_) * k));
  }
  friend constexpr ByteSize operator*(double k, ByteSize s) { return s * k; }

 private:
  static constexpr ByteSize from_unit(double v, int pow10_of_1024) {
    double scaled = v;
    for (int i = 0; i < pow10_of_1024; ++i) scaled *= 1024.0;
    return ByteSize(static_cast<u64>(scaled));
  }

  u64 bytes_ = 0;
};

}  // namespace staratlas
