#include "common/simd.h"

#include <cstdlib>

namespace staratlas {

SimdLevel detected_simd_level() {
#if defined(STARATLAS_X86_SIMD)
  static const SimdLevel level = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    return SimdLevel::kSse2;  // baseline on x86-64
  }();
  return level;
#else
  return SimdLevel::kScalar;
#endif
}

bool simd_force_scalar() {
  static const bool force = [] {
    const char* v = std::getenv("STARATLAS_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }();
  return force;
}

SimdLevel active_simd_level() {
  static const SimdLevel level =
      simd_force_scalar() ? SimdLevel::kScalar : detected_simd_level();
  return level;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace staratlas
