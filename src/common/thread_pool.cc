#include "common/thread_pool.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

ThreadPool::ThreadPool(usize num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (usize i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  {
    std::lock_guard lock(mu_);
    STARATLAS_CHECK(!stop_);
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_task_.notify_one();
  return result;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_blocks(ThreadPool& pool, usize count,
                         const std::function<void(usize, usize)>& body) {
  if (count == 0) return;
  const usize num_blocks = std::min(count, pool.size() * 4);
  const usize block = (count + num_blocks - 1) / num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (usize begin = 0; begin < count; begin += block) {
    const usize end = std::min(begin + block, count);
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace staratlas
