#include "common/units.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <string_view>

#include "common/error.h"

namespace staratlas {

std::string ByteSize::str() const {
  struct Unit {
    double factor;
    const char* name;
  };
  static constexpr std::array<Unit, 5> kUnits{{
      {1099511627776.0, "TiB"},
      {1073741824.0, "GiB"},
      {1048576.0, "MiB"},
      {1024.0, "KiB"},
      {1.0, "B"},
  }};
  const double b = static_cast<double>(bytes_);
  for (const auto& unit : kUnits) {
    if (b >= unit.factor || unit.factor == 1.0) {
      char buf[48];
      if (unit.factor == 1.0) {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", b / unit.factor, unit.name);
      }
      return buf;
    }
  }
  return "0 B";
}

ByteSize ByteSize::parse(const std::string& text) {
  usize pos = 0;
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  usize start = pos;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.')) {
    ++pos;
  }
  if (pos == start) throw ParseError("byte size has no numeric part: '" + text + "'");
  double value = 0.0;
  try {
    value = std::stod(text.substr(start, pos - start));
  } catch (const std::exception&) {
    throw ParseError("bad byte size number: '" + text + "'");
  }
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::string unit = text.substr(pos);
  while (!unit.empty() && std::isspace(static_cast<unsigned char>(unit.back()))) unit.pop_back();
  if (unit.empty() || unit == "B") return ByteSize(static_cast<u64>(value));
  if (unit == "KiB" || unit == "KB" || unit == "K") return from_kib(value);
  if (unit == "MiB" || unit == "MB" || unit == "M") return from_mib(value);
  if (unit == "GiB" || unit == "GB" || unit == "G") return from_gib(value);
  if (unit == "TiB" || unit == "TB" || unit == "T") return from_tib(value);
  throw ParseError("unknown byte size unit: '" + unit + "'");
}

}  // namespace staratlas
