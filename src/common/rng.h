// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in staratlas (genome synthesis, read simulation,
// spot interruptions, service-time noise) flows through Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, which gives high-quality streams that
// are cheap to fork per-component.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace staratlas {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
u64 splitmix64(u64& state);

/// Stateless 64-bit mix of a value (useful for deriving per-item seeds).
u64 hash64(u64 value);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(u64 seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~u64{0}; }

  /// Next raw 64-bit output.
  u64 operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 uniform(u64 bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  i64 uniform_range(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Box-Muller (no cached spare: deterministic stream).
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev);

  /// Log-normal such that the *median* of the distribution is `median`
  /// and sigma is the log-space standard deviation.
  double lognormal_median(double median, double sigma);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Poisson draw (Knuth for small lambda, normal approximation above 64).
  u64 poisson(double lambda);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  usize weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (usize i = v.size(); i > 1; --i) {
      usize j = static_cast<usize>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent child generator; `salt` distinguishes children.
  Rng fork(u64 salt) const;

  /// Forks a child keyed by a string label (stable across runs).
  Rng fork(const std::string& label) const;

 private:
  u64 s_[4];
};

}  // namespace staratlas
