#include "common/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace staratlas::alloc_counter {
namespace {
thread_local u64 tl_allocations = 0;
thread_local u64 tl_allocated_bytes = 0;
}  // namespace

u64 thread_allocations() { return tl_allocations; }
u64 thread_allocated_bytes() { return tl_allocated_bytes; }

namespace detail {
void* counted_new(std::size_t size) {
  ++tl_allocations;
  tl_allocated_bytes += size;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace detail

}  // namespace staratlas::alloc_counter

// Global replacements. Deliberately minimal: every form funnels through
// counted_new/free, and sized/aligned deletes ignore their hints (malloc
// alignment suffices for the types this codebase allocates).
void* operator new(std::size_t size) {
  return staratlas::alloc_counter::detail::counted_new(size);
}
void* operator new[](std::size_t size) {
  return staratlas::alloc_counter::detail::counted_new(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return staratlas::alloc_counter::detail::counted_new(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return staratlas::alloc_counter::detail::counted_new(size);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
