// Virtual time for the cloud simulator and duration formatting.
//
// The discrete-event simulation advances a virtual clock measured in
// seconds (double). VirtualTime/VirtualDuration keep sim time distinct from
// wall-clock time in signatures, preventing the classic "added wall seconds
// to sim seconds" bug.
#pragma once

#include <compare>
#include <string>

namespace staratlas {

class VirtualDuration {
 public:
  constexpr VirtualDuration() = default;
  constexpr explicit VirtualDuration(double seconds) : seconds_(seconds) {}

  static constexpr VirtualDuration seconds(double s) { return VirtualDuration(s); }
  static constexpr VirtualDuration minutes(double m) { return VirtualDuration(m * 60.0); }
  static constexpr VirtualDuration hours(double h) { return VirtualDuration(h * 3600.0); }
  static constexpr VirtualDuration zero() { return VirtualDuration(0.0); }

  constexpr double secs() const { return seconds_; }
  constexpr double mins() const { return seconds_ / 60.0; }
  constexpr double hrs() const { return seconds_ / 3600.0; }

  /// "1h 23m 45s" style formatting (or "12.3s" below a minute).
  std::string str() const;

  constexpr VirtualDuration operator+(VirtualDuration o) const {
    return VirtualDuration(seconds_ + o.seconds_);
  }
  constexpr VirtualDuration operator-(VirtualDuration o) const {
    return VirtualDuration(seconds_ - o.seconds_);
  }
  constexpr VirtualDuration& operator+=(VirtualDuration o) {
    seconds_ += o.seconds_;
    return *this;
  }
  constexpr VirtualDuration operator*(double k) const {
    return VirtualDuration(seconds_ * k);
  }
  constexpr double operator/(VirtualDuration o) const { return seconds_ / o.seconds_; }
  constexpr auto operator<=>(const VirtualDuration&) const = default;

 private:
  double seconds_ = 0.0;
};

class VirtualTime {
 public:
  constexpr VirtualTime() = default;
  constexpr explicit VirtualTime(double seconds) : seconds_(seconds) {}

  static constexpr VirtualTime origin() { return VirtualTime(0.0); }

  constexpr double secs() const { return seconds_; }
  std::string str() const { return VirtualDuration(seconds_).str(); }

  constexpr VirtualTime operator+(VirtualDuration d) const {
    return VirtualTime(seconds_ + d.secs());
  }
  constexpr VirtualDuration operator-(VirtualTime o) const {
    return VirtualDuration(seconds_ - o.seconds_);
  }
  constexpr auto operator<=>(const VirtualTime&) const = default;

 private:
  double seconds_ = 0.0;
};

}  // namespace staratlas
