#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace staratlas {

u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u64 hash64(u64 value) {
  u64 state = value;
  return splitmix64(state);
}

namespace {
inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(u64 seed) {
  u64 state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

u64 Rng::operator()() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::uniform(u64 bound) {
  STARATLAS_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const u64 threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  for (;;) {
    const u64 r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

i64 Rng::uniform_range(i64 lo, i64 hi) {
  STARATLAS_CHECK(lo <= hi);
  const u64 span = static_cast<u64>(hi - lo) + 1;
  if (span == 0) return static_cast<i64>((*this)());  // full 64-bit range
  return lo + static_cast<i64>(uniform(span));
}

double Rng::uniform01() {
  // 53 bits of mantissa.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() {
  // Box-Muller; discard the spare so the stream length per call is fixed.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  STARATLAS_CHECK(median > 0.0);
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  STARATLAS_CHECK(mean > 0.0);
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

u64 Rng::poisson(double lambda) {
  STARATLAS_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0 : static_cast<u64>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  u64 k = 0;
  double product = uniform01();
  while (product > limit) {
    ++k;
    product *= uniform01();
  }
  return k;
}

usize Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    STARATLAS_CHECK(w >= 0.0);
    total += w;
  }
  STARATLAS_CHECK(total > 0.0);
  double draw = uniform01() * total;
  for (usize i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::fork(u64 salt) const {
  // Derive a child seed from our state and the salt; does not perturb *this.
  u64 mix = s_[0] ^ rotl(s_[2], 13) ^ hash64(salt);
  return Rng(hash64(mix));
}

Rng Rng::fork(const std::string& label) const {
  u64 h = 0xcbf29ce484222325ULL;  // FNV-1a over the label
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return fork(h);
}

}  // namespace staratlas
