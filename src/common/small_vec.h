// SmallVec<T, N>: a vector with N elements of inline storage that spills
// to the heap only when it grows past N.
//
// Exists for the alignment hot path: AlignmentHit::segments holds 1-3
// entries for almost every read, so storing them inline makes hits
// trivially recyclable — clearing and refilling a hit vector touches no
// heap memory until a read exceeds the inline capacity.
//
// Supports the subset of std::vector's interface the codebase uses; T
// must be trivially copyable (segments and the like are PODs), which
// keeps grow/copy a memcpy.
#pragma once

#include <algorithm>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "common/types.h"

namespace staratlas {

template <typename T, usize N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable element types");

 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }
  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVec() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  usize size() const { return size_; }
  usize capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  /// True while the elements live in the inline buffer (no heap in play).
  bool is_inline() const { return data_ == inline_data(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](usize i) { return data_[i]; }
  const T& operator[](usize i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(usize wanted) {
    if (wanted > capacity_) grow_to(wanted);
  }

  void resize(usize n) {
    reserve(n);
    for (usize i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    data_[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    data_[size_] = T{std::forward<Args>(args)...};
    return data_[size_++];
  }

  void pop_back() { --size_; }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void grow_to(usize wanted) {
    const usize new_cap = std::max<usize>(wanted, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(static_cast<void*>(fresh), data_, size_ * sizeof(T));
    if (!is_inline()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = new_cap;
  }

  void release() {
    if (!is_inline()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  /// Takes `other`'s contents; spilled buffers transfer ownership, inline
  /// contents are copied (they are cheap by construction).
  void steal(SmallVec& other) {
    if (other.is_inline()) {
      std::memcpy(static_cast<void*>(inline_data()), other.data_,
                  other.size_ * sizeof(T));
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  usize capacity_ = N;
  usize size_ = 0;
};

}  // namespace staratlas
