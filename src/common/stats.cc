#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace staratlas {

double sum(std::span<const double> xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  if (xs.empty()) return 0.0;
  STARATLAS_CHECK(xs.size() == ws.size());
  double num = 0.0;
  double den = 0.0;
  for (usize i = 0; i < xs.size(); ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  STARATLAS_CHECK(den > 0.0);
  return num / den;
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  STARATLAS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const usize lo = static_cast<usize>(rank);
  const usize hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void RunningStats::add(double x) {
  ++n_;
  total_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

}  // namespace staratlas
