// Shared SIMD runtime dispatch for the io and align kernels.
//
// Every vectorized hot loop in this codebase follows one idiom: a scalar
// reference implementation, optional SSE2/AVX2 variants compiled with
// per-function target attributes, and a one-time runtime pick of the
// widest level the CPU supports. This header centralizes the probe and
// the pick so io/fasta.cc, io/fastq_block.cc and align/extend.cc share
// one dispatch path instead of each carrying a copy.
//
// Setting STARATLAS_FORCE_SCALAR=1 in the environment pins every kernel
// dispatched through pick_kernel() to its scalar reference. The CI
// force-scalar job reruns the alignment determinism and mapping-rate
// smoke tests under it, so scalar/SIMD outcome parity is enforced on
// every build, not just in the fuzz tests. The level is sampled once on
// first use (function-local static), so the variable must be set before
// the process touches any dispatched kernel — true for ctest jobs, which
// set it at process spawn.
#pragma once

#include "common/types.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define STARATLAS_X86_SIMD 1
#endif

namespace staratlas {

enum class SimdLevel : u8 { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Widest level the CPU supports (ignores STARATLAS_FORCE_SCALAR).
/// x86-64 guarantees SSE2; AVX2 is probed at runtime.
SimdLevel detected_simd_level();

/// True when STARATLAS_FORCE_SCALAR is set to anything but "" or "0".
/// Cached after the first call.
bool simd_force_scalar();

/// The dispatch level: detected_simd_level(), clamped to kScalar when
/// STARATLAS_FORCE_SCALAR is active. Cached after the first call.
SimdLevel active_simd_level();

/// Name for logs and bench output: "scalar", "sse2", "avx2".
const char* simd_level_name(SimdLevel level);

/// Picks the widest kernel active_simd_level() allows. Null entries fall
/// through to the next narrower level, so callers without (say) an SSE2
/// variant pass nullptr and still get correct dispatch. `scalar` must be
/// non-null. Typical use binds the result once per process:
///
///   static const Kernel k = pick_kernel(&run_scalar, &run_sse2, &run_avx2);
template <typename Fn>
Fn pick_kernel(Fn scalar, Fn sse2, Fn avx2) {
  switch (active_simd_level()) {
    case SimdLevel::kAvx2:
      if (avx2) return avx2;
      [[fallthrough]];
    case SimdLevel::kSse2:
      if (sse2) return sse2;
      [[fallthrough]];
    case SimdLevel::kScalar:
      break;
  }
  return scalar;
}

}  // namespace staratlas
