// BoundedQueue: a blocking MPMC queue over a fixed ring, the backpressure
// primitive of the streaming ingest path.
//
// Capacity is fixed at construction and the ring storage never grows, so
// (a) a producer that outruns its consumers blocks instead of buffering
// unbounded input in memory, and (b) steady-state push/pop performs no
// heap allocation beyond what moving T itself does. close() wakes every
// waiter: pending pops drain the remaining items and then return nullopt;
// pushes after close are rejected.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"

namespace staratlas {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(usize capacity) : slots_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  usize capacity() const { return slots_.size(); }

  /// Blocks while full. Returns false (value dropped) if the queue is or
  /// becomes closed before space frees up.
  bool push(T value) {
    std::unique_lock lock(mu_);
    cv_push_.wait(lock, [&] { return closed_ || size_ < slots_.size(); });
    if (closed_) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    high_water_ = std::max(high_water_, size_);
    cv_pop_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    std::lock_guard lock(mu_);
    if (closed_ || size_ >= slots_.size()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    high_water_ = std::max(high_water_, size_);
    cv_pop_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed and
  /// fully drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_pop_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;
    return take_front();
  }

  /// Non-blocking pop; nullopt when empty (whether or not closed).
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (size_ == 0) return std::nullopt;
    return take_front();
  }

  /// Ends the stream: pending and future pops drain then return nullopt,
  /// pushes fail. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  usize size() const {
    std::lock_guard lock(mu_);
    return size_;
  }

  /// Most items ever queued at once — the backpressure witness the
  /// peak-memory tests assert on (never exceeds capacity by construction).
  usize high_water() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }

 private:
  T take_front() {
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    cv_push_.notify_one();
    return value;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::vector<T> slots_;
  usize head_ = 0;
  usize size_ = 0;
  usize high_water_ = 0;
  bool closed_ = false;
};

}  // namespace staratlas
