#include "common/vclock.h"

#include <cmath>
#include <cstdio>

namespace staratlas {

std::string VirtualDuration::str() const {
  char buf[64];
  const double s = seconds_;
  const double abs_s = std::fabs(s);
  if (abs_s < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
    return buf;
  }
  const char* sign = s < 0 ? "-" : "";
  const double total = abs_s;
  const long hours = static_cast<long>(total / 3600.0);
  const long mins = static_cast<long>((total - 3600.0 * static_cast<double>(hours)) / 60.0);
  const double secs =
      total - 3600.0 * static_cast<double>(hours) - 60.0 * static_cast<double>(mins);
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%s%ldh %ldm %.0fs", sign, hours, mins, secs);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%ldm %.1fs", sign, mins, secs);
  }
  return buf;
}

}  // namespace staratlas
