// Minimal leveled logger. Benches and examples print through std::cout for
// their primary output; the logger is for diagnostics and defaults to WARN
// so library internals stay quiet under test.
#pragma once

#include <sstream>
#include <string>

namespace staratlas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: STARATLAS_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_emit(level_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace staratlas

#define STARATLAS_LOG(level) ::staratlas::LogLine(::staratlas::LogLevel::level)
