// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper used by the alignment engine to fan read chunks across cores.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.h"

namespace staratlas {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 means hardware_concurrency).
  explicit ThreadPool(usize num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  usize size() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until all currently queued tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  usize active_ = 0;
  bool stop_ = false;
};

/// Splits [0, count) into contiguous blocks and runs `body(begin, end)` on
/// the pool, blocking until every block completes. `body` must be safe to
/// call concurrently on disjoint ranges. Exceptions from blocks are
/// propagated (the first one encountered is rethrown).
void parallel_for_blocks(ThreadPool& pool, usize count,
                         const std::function<void(usize, usize)>& body);

}  // namespace staratlas
