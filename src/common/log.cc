#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace staratlas {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace staratlas
