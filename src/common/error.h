// Error handling: a single exception hierarchy for the library plus a
// lightweight STARATLAS_CHECK macro for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace staratlas {

/// Base class for all staratlas errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (FASTA/FASTQ/GTF/SRA parsing, bad config values).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// I/O failure (missing file, short read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Violated API precondition (caller bug).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

/// Internal invariant broken (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw InternalError(std::string("check failed: ") + expr + " at " + file +
                      ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace staratlas

/// Invariant check that stays on in release builds; throws InternalError.
#define STARATLAS_CHECK(expr)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::staratlas::detail::check_failed(#expr, __FILE__, __LINE__);    \
    }                                                                  \
  } while (false)
