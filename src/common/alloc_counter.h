// Thread-local heap-allocation counter backing the hot-path zero-allocation
// guarantees (tests/align/workspace_alloc_test.cc, bench/bench_hotpath.cpp).
//
// The companion .cc replaces the global operator new/delete with counting
// versions. Because staratlas_common is a static library, the replacement
// is linked into a binary only when that binary references a symbol from
// alloc_counter.cc — i.e. calls one of the functions below. Binaries that
// never ask for allocation counts keep the stock allocator.
#pragma once

#include "common/types.h"

namespace staratlas::alloc_counter {

/// Number of heap allocations (operator new calls) made by the calling
/// thread since it started. Monotonic; diff two readings around a region
/// to count its allocations.
u64 thread_allocations();

/// Total bytes requested by the calling thread's allocations. Monotonic.
u64 thread_allocated_bytes();

}  // namespace staratlas::alloc_counter
