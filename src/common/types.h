// Fundamental aliases shared across all staratlas libraries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace staratlas {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Position within a (concatenated) genome sequence.
using GenomePos = u64;
/// Index of a contig within an assembly.
using ContigId = u32;
/// Index of a gene within an annotation.
using GeneId = u32;
/// Zero-based read ordinal within one sample.
using ReadId = u64;

/// Sentinel for "no position".
inline constexpr GenomePos kNoPos = ~GenomePos{0};
/// Sentinel for "no gene".
inline constexpr GeneId kNoGene = ~GeneId{0};

}  // namespace staratlas
