// Small numeric helpers used by benches, the cost model and DESeq2.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace staratlas {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Weighted mean: sum(w_i * x_i) / sum(w_i). Requires equal sizes and a
/// positive weight total; returns 0 for empty input.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Median (copies + sorts); 0 for an empty span.
double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Geometric mean of strictly positive values; 0 if any value <= 0 or empty.
double geometric_mean(std::span<const double> xs);

/// Sum.
double sum(std::span<const double> xs);

/// Online accumulator for streaming mean/min/max/stddev.
class RunningStats {
 public:
  void add(double x);
  usize count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const;
  double total() const { return total_; }

 private:
  usize n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

}  // namespace staratlas
