// BASE-PSEUDO — the (pseudo)aligner baseline from the paper's conclusion:
// "other (pseudo)aligners should also provide the current mapping rate
// value (e.g. Salmon does not)".
//
// Compares the full STAR-like aligner against the kallisto/Salmon-style
// transcriptome pseudo-aligner on the same samples: speed, mapping rates
// per library class, and — the paper's actual point — whether the tool's
// telemetry supports the early-stopping optimization at all.

#include <chrono>
#include <iostream>

#include "align/pseudo.h"
#include "bench_common.h"
#include "core/report.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  const BenchWorld& w = bench_world();
  const PseudoAligner pseudo(w.r111, w.synthesizer->annotation());

  const ReadSet bulk =
      w.simulator->simulate(bulk_rna_profile(), 8'000, Rng(2001));
  const ReadSet sc =
      w.simulator->simulate(single_cell_profile(), 8'000, Rng(2002));
  std::vector<std::string> bulk_seqs;
  std::vector<std::string> sc_seqs;
  for (const auto& read : bulk.reads) bulk_seqs.push_back(read.sequence);
  for (const auto& read : sc.reads) sc_seqs.push_back(read.sequence);

  // Full aligner (release-111 index, 1 thread for a fair per-core number).
  EngineConfig config;
  config.num_threads = 1;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  const AlignmentRun star_bulk = engine.run(bulk);
  const AlignmentRun star_sc = engine.run(sc);

  const auto time_pseudo = [&](const std::vector<std::string>& seqs,
                               PseudoStats& stats) {
    const auto start = std::chrono::steady_clock::now();
    stats = pseudo.run(seqs);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  PseudoStats pseudo_bulk;
  PseudoStats pseudo_sc;
  const double pseudo_bulk_secs = time_pseudo(bulk_seqs, pseudo_bulk);
  const double pseudo_sc_secs = time_pseudo(sc_seqs, pseudo_sc);

  std::cout << "BASE-PSEUDO: full aligner vs transcriptome pseudo-aligner\n"
            << "(8000 reads per sample, release-111 index, 1 thread)\n\n";
  Table table({"tool", "bulk time", "single-cell time", "bulk map%",
               "sc map%", "progress telemetry", "early stop possible"});
  table.add_row({"staratlas aligner (STAR-like)",
                 strf("%.2f s", star_bulk.wall_seconds),
                 strf("%.2f s", star_sc.wall_seconds),
                 strf("%.1f", 100.0 * star_bulk.stats.mapped_rate()),
                 strf("%.1f", 100.0 * star_sc.stats.mapped_rate()),
                 "Log.progress.out stream", "yes (paper §III.B)"});
  table.add_row({"pseudo-aligner (Salmon-style)",
                 strf("%.2f s", pseudo_bulk_secs),
                 strf("%.2f s", pseudo_sc_secs),
                 strf("%.1f", 100.0 * pseudo_bulk.mapped_rate()),
                 strf("%.1f", 100.0 * pseudo_sc.mapped_rate()),
                 "none by default (paper's complaint)",
                 "only if rate were exposed"});
  table.print(std::cout);

  std::cout << "\nnotes:\n"
            << " * pseudo is "
            << strf("%.0fx", star_bulk.wall_seconds / pseudo_bulk_secs)
            << " faster per bulk read but counts only transcriptome reads\n"
               "   (its rate ~ exonic fraction; intronic/intergenic reads "
               "don't map),\n"
            << " * the bulk/single-cell separation ("
            << strf("%.0f vs %.0f%%", 100.0 * pseudo_bulk.mapped_rate(),
                    100.0 * pseudo_sc.mapped_rate())
            << ") survives, so the paper's early-stop rule WOULD transfer\n"
               "   to pseudo-aligners if they streamed a running rate — the "
               "paper's exact suggestion.\n";
  return 0;
}
