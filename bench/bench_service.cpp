// SERVICE — the multi-tenant alignment service under load: fair-share
// scheduling over the shared engine pool, measured end to end.
//
// Four phases, all real work against the bench-scale genome world, all
// attaching the ONE index through a single SharedIndexCache (the cache's
// load counter across the whole bench is the zero-duplicate-loads gate):
//
//   1. Identity: one sample through the service vs AlignmentEngine::run
//      on the same reads — the rendered artifacts (final log with wall
//      pinned, gene counts TSV, junctions TSV) must be BYTE-IDENTICAL.
//   2. Isolated latency: the light tenant alone, sequential submissions;
//      its p50/p99 latency is the interference-free anchor.
//   3. Flood: the heavy tenant keeps a deep backlog queued while the
//      light tenant submits the same samples as phase 2. Fair-share
//      chunk scheduling bounds the interference: light p99 under flood
//      must stay <= 5x its isolated p99.
//   4. Saturation: >= 1050 samples across three tenant profiles
//      (light / medium / heavy — distinct weights and admission caps)
//      submitted concurrently and drained to completion. Aggregate
//      service throughput must stay >= 0.9x a single engine.run over
//      the identical reads (the scheduler + chunk merges may cost at
//      most 10%).
//
// Emits machine-readable BENCH_service.json (schema in EXPERIMENTS.md),
// the sixth point of the perf trajectory.
//
// Flags:
//   --smoke             reduced configuration (CI: bench_service_smoke)
//   --out PATH          output JSON path (default BENCH_service.json)
//   --baseline PATH     compare against a committed baseline; exit 1 on
//                       missing schema keys, an identity failure, a
//                       duplicate index load, light-p99 interference
//                       > 5x isolated, saturation throughput < 0.9x the
//                       engine, or a >30% throughput-ratio regression
//
// Note on the 1-core box: workers time-slice one CPU, so latencies are
// measured in chunk-times, not wall-parallel time. Every gate is a
// same-run ratio (flood p99 / isolated p99, service rps / engine rps),
// which transfers across machines; min-of-passes (max for rps) is
// reported, the same convention as the other benches.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "common/stats.h"
#include "index/shared_cache.h"
#include "service/artifacts.h"
#include "service/service.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ServiceBenchConfig {
  usize workers = 2;
  usize chunk_size = 64;
  usize identity_reads = 3000;
  usize light_reads = 512;       ///< one light sample (phases 2+3)
  usize isolated_samples = 30;   ///< phase 2 submissions
  usize flood_light_samples = 30;
  usize flood_heavy_samples = 16;
  usize heavy_reads = 4096;  ///< one flood-heavy sample
  usize saturation_per_tenant = 350;  ///< x3 tenants >= 1050 submissions
  usize passes = 3;
  bool smoke = false;
};

/// The three tenant profiles: an interactive light tenant with a weight
/// boost and small caps, a medium batch tenant, and a bulk heavy tenant
/// whose caps admit a deep backlog.
ServiceConfig make_service_config(const ServiceBenchConfig& cfg) {
  ServiceConfig config;
  config.engine.num_threads = cfg.workers;
  config.engine.collect_junctions = true;
  config.chunk_size = cfg.chunk_size;
  config.admission.max_total_samples = 4096;
  config.admission.max_total_reads = 64u << 20;
  TenantProfile light;
  light.weight = 2.0;
  light.max_queued_samples = 512;
  light.max_queued_reads = 4u << 20;
  TenantProfile medium;
  medium.weight = 1.0;
  medium.max_queued_samples = 1024;
  medium.max_queued_reads = 16u << 20;
  TenantProfile heavy;
  heavy.weight = 1.0;
  heavy.max_queued_samples = 2048;
  heavy.max_queued_reads = 32u << 20;
  config.tenants["light"] = light;
  config.tenants["medium"] = medium;
  config.tenants["heavy"] = heavy;
  return config;
}

/// Single-flight loader: a v4 save/load round-trip of the bench index
/// (same content, and exercises the packed on-disk path the daemon would
/// really attach).
GenomeIndex load_bench_index() {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  bench_world().index111.save(buf, GenomeIndex::kVersionV4);
  return GenomeIndex::load(buf);
}

SampleSubmission make_submission(const char* tenant, std::string name,
                                 ReadSet reads) {
  SampleSubmission submission;
  submission.tenant = tenant;
  submission.name = std::move(name);
  submission.reads = std::move(reads);
  return submission;
}

struct IdentityResult {
  bool identity_ok = false;
  u64 reads = 0;
};

IdentityResult run_identity(SharedIndexCache& cache,
                            const ServiceBenchConfig& cfg) {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), cfg.identity_reads, Rng(777));

  auto pin = cache.acquire("bench-index", load_bench_index);
  AlignmentEngine engine(*pin, &w.synthesizer->annotation(),
                         make_service_config(cfg).engine);
  AlignmentRun run = engine.run(reads);
  SampleResult reference;
  reference.total_reads = reads.size();
  u64 bases = 0;
  for (const auto& read : reads.reads) bases += read.sequence.size();
  reference.mean_read_length =
      static_cast<double>(bases) / static_cast<double>(reads.size());
  reference.stats = run.stats;
  reference.gene_counts = run.gene_counts;
  reference.junctions = run.junctions;
  const std::string expect =
      render_sample_artifacts(reference, *pin, &w.synthesizer->annotation());

  AlignmentService service(cache, "bench-index", load_bench_index,
                           &w.synthesizer->annotation(),
                           make_service_config(cfg));
  const SampleResult result =
      service.submit_and_wait(make_submission("medium", "identity", reads));
  service.drain();

  IdentityResult out;
  out.reads = reads.size();
  out.identity_ok =
      render_sample_artifacts(result, *pin, &w.synthesizer->annotation()) ==
      expect;
  return out;
}

struct LatencyResult {
  double p50_ms = 0;
  double p99_ms = 0;
  u64 samples = 0;
};

/// Phase 2: the light tenant alone, sequential — interference-free.
LatencyResult run_isolated(SharedIndexCache& cache,
                           const ServiceBenchConfig& cfg) {
  const BenchWorld& w = bench_world();
  AlignmentService service(cache, "bench-index", load_bench_index,
                           &w.synthesizer->annotation(),
                           make_service_config(cfg));
  for (usize i = 0; i < cfg.isolated_samples; ++i) {
    const ReadSet reads =
        w.simulator->simulate(bulk_rna_profile(), cfg.light_reads, Rng(i + 1));
    service.submit_and_wait(
        make_submission("light", "iso" + std::to_string(i), reads));
  }
  const auto metrics = service.metrics();
  const auto& latencies = metrics.tenants.at("light").latencies;
  service.drain();
  LatencyResult out;
  out.samples = latencies.size();
  out.p50_ms = percentile(latencies, 50.0) * 1e3;
  out.p99_ms = percentile(latencies, 99.0) * 1e3;
  return out;
}

struct FloodResult {
  LatencyResult light;
  u64 heavy_completed = 0;
  u64 heavy_drain_rejected = 0;
};

/// Phase 3: same light samples as phase 2, but against a deep heavy
/// backlog that stays queued the whole time.
FloodResult run_flood(SharedIndexCache& cache, const ServiceBenchConfig& cfg) {
  const BenchWorld& w = bench_world();
  AlignmentService service(cache, "bench-index", load_bench_index,
                           &w.synthesizer->annotation(),
                           make_service_config(cfg));
  std::vector<AlignmentService::Ticket> heavy;
  for (usize i = 0; i < cfg.flood_heavy_samples; ++i) {
    const ReadSet reads =
        w.simulator->simulate(bulk_rna_profile(), cfg.heavy_reads, Rng(i + 50));
    auto ticket = service.submit(
        make_submission("heavy", "flood" + std::to_string(i), reads));
    if (ticket.status != SubmitStatus::kAccepted) {
      std::cerr << "flood heavy submission rejected: "
                << submit_status_name(ticket.status) << "\n";
      std::exit(2);
    }
    heavy.push_back(std::move(ticket));
  }
  for (usize i = 0; i < cfg.flood_light_samples; ++i) {
    const ReadSet reads =
        w.simulator->simulate(bulk_rna_profile(), cfg.light_reads, Rng(i + 1));
    service.submit_and_wait(
        make_submission("light", "iso" + std::to_string(i), reads));
  }
  const auto metrics = service.metrics();
  const auto& latencies = metrics.tenants.at("light").latencies;
  FloodResult out;
  out.light.samples = latencies.size();
  out.light.p50_ms = percentile(latencies, 50.0) * 1e3;
  out.light.p99_ms = percentile(latencies, 99.0) * 1e3;
  // Cut the rest of the backlog loose; in-flight completes, queued is
  // cleanly rejected.
  service.drain();
  for (auto& ticket : heavy) {
    if (ticket.result.get().rejected_at_drain) {
      ++out.heavy_drain_rejected;
    } else {
      ++out.heavy_completed;
    }
  }
  return out;
}

struct SaturationResult {
  u64 submissions = 0;
  u64 reads = 0;
  double engine_secs = 1e30;
  double service_secs = 1e30;
  double engine_reads_per_s = 0;
  double service_reads_per_s = 0;
  double throughput_ratio = 0;
  usize queue_high_water = 0;
  u64 chunks_dispatched = 0;
};

/// Phase 4: >= 1050 concurrent submissions over the three profiles vs
/// one engine.run over the identical reads.
SaturationResult run_saturation(SharedIndexCache& cache,
                                const ServiceBenchConfig& cfg) {
  const BenchWorld& w = bench_world();
  struct Job {
    const char* tenant;
    ReadSet reads;
  };
  const struct {
    const char* tenant;
    usize reads;
  } kProfiles[] = {{"heavy", 96}, {"medium", 64}, {"light", 32}};
  std::vector<Job> jobs;
  ReadSet combined;
  u64 seed = 9000;
  for (usize i = 0; i < cfg.saturation_per_tenant; ++i) {
    for (const auto& profile : kProfiles) {
      Job job;
      job.tenant = profile.tenant;
      job.reads =
          w.simulator->simulate(bulk_rna_profile(), profile.reads, Rng(seed++));
      combined.reads.insert(combined.reads.end(), job.reads.reads.begin(),
                            job.reads.reads.end());
      jobs.push_back(std::move(job));
    }
  }

  SaturationResult out;
  out.submissions = jobs.size();
  out.reads = combined.reads.size();
  auto pin = cache.acquire("bench-index", load_bench_index);
  for (usize pass = 0; pass < cfg.passes; ++pass) {
    AlignmentEngine engine(*pin, &w.synthesizer->annotation(),
                           make_service_config(cfg).engine);
    auto start = std::chrono::steady_clock::now();
    engine.run(combined);
    out.engine_secs = std::min(out.engine_secs, seconds_since(start));

    AlignmentService service(cache, "bench-index", load_bench_index,
                             &w.synthesizer->annotation(),
                             make_service_config(cfg));
    std::vector<AlignmentService::Ticket> tickets;
    tickets.reserve(jobs.size());
    start = std::chrono::steady_clock::now();
    for (usize j = 0; j < jobs.size(); ++j) {
      auto ticket = service.submit(make_submission(
          jobs[j].tenant, "sat" + std::to_string(j), jobs[j].reads));
      if (ticket.status != SubmitStatus::kAccepted) {
        std::cerr << "saturation submission rejected: "
                  << submit_status_name(ticket.status) << "\n";
        std::exit(2);
      }
      tickets.push_back(std::move(ticket));
    }
    for (auto& ticket : tickets) ticket.result.wait();
    out.service_secs = std::min(out.service_secs, seconds_since(start));
    const auto metrics = service.metrics();
    out.queue_high_water = metrics.queue_high_water;
    out.chunks_dispatched = metrics.chunks_dispatched;
    service.drain();
  }
  out.engine_reads_per_s = static_cast<double>(out.reads) / out.engine_secs;
  out.service_reads_per_s = static_cast<double>(out.reads) / out.service_secs;
  out.throughput_ratio = out.service_reads_per_s / out.engine_reads_per_s;
  return out;
}

struct BenchResults {
  IdentityResult identity;
  LatencyResult isolated;
  FloodResult flood;
  double p99_ratio = 0;
  SaturationResult saturation;
  u64 cache_loads = 0;
  u64 cache_hits = 0;
};

int check_results(const std::string& baseline_path, const BenchResults& r) {
  static const char* kRequiredKeys[] = {
      "identity_ok",       "isolated_p99_ms",     "flood_p99_ms",
      "p99_ratio",         "engine_reads_per_s",  "service_reads_per_s",
      "throughput_ratio",  "cache_loads",         "submissions"};
  const auto baseline = read_json_numbers(baseline_path);
  int failures = 0;
  for (const char* key : kRequiredKeys) {
    if (!baseline.count(key)) {
      std::cerr << "SMOKE FAIL: baseline missing key '" << key << "'\n";
      ++failures;
    }
  }
  if (!r.identity.identity_ok) {
    std::cerr << "SMOKE FAIL: service result is not byte-identical to "
                 "engine.run\n";
    ++failures;
  }
  if (r.cache_loads != 1) {
    std::cerr << "SMOKE FAIL: index loaded " << r.cache_loads
              << " times across the bench (single-flight cache must load "
                 "exactly once)\n";
    ++failures;
  }
  if (r.p99_ratio > 5.0) {
    std::cerr << "SMOKE FAIL: light-tenant p99 under heavy flood is "
              << r.p99_ratio << "x its isolated p99 (gate: <= 5x)\n";
    ++failures;
  }
  if (r.saturation.throughput_ratio < 0.9) {
    std::cerr << "SMOKE FAIL: saturation throughput is "
              << r.saturation.throughput_ratio
              << "x the single engine.run (gate: >= 0.9x)\n";
    ++failures;
  }
  // >30% regression of the in-process throughput ratio vs the committed
  // same-box baseline fails (the ratio transfers across machines).
  const double kKeep = 0.7;
  if (baseline.count("throughput_ratio") &&
      r.saturation.throughput_ratio <
          kKeep * baseline.at("throughput_ratio")) {
    std::cerr << "SMOKE FAIL: throughput_ratio "
              << r.saturation.throughput_ratio
              << " regressed >30% vs baseline "
              << baseline.at("throughput_ratio") << "\n";
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceBenchConfig cfg;
  std::string out_path = "BENCH_service.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.identity_reads = 1500;
      cfg.isolated_samples = 20;
      cfg.flood_light_samples = 20;
      cfg.flood_heavy_samples = 12;
      cfg.passes = 2;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_service [--smoke] [--out PATH] "
                   "[--baseline PATH]\n";
      return 2;
    }
  }

  std::cout << "SERVICE: multi-tenant fair-share alignment service"
            << (cfg.smoke ? " (smoke)" : "") << "\n";

  // One cache for the whole bench: every phase's service and the
  // reference engines attach through it, so loads() at the end counts
  // every duplicate load anywhere.
  SharedIndexCache cache(ByteSize::from_gib(8.0));
  BenchResults r;

  r.identity = run_identity(cache, cfg);
  std::cout << "identity (" << r.identity.reads << " reads): "
            << (r.identity.identity_ok ? "OK" : "FAILED") << "\n";

  r.isolated = run_isolated(cache, cfg);
  std::cout << "isolated light tenant (" << r.isolated.samples << " x "
            << cfg.light_reads << " reads): p50 " << r.isolated.p50_ms
            << " ms, p99 " << r.isolated.p99_ms << " ms\n";

  // Min-of-passes on the ratio's numerator: take the best flood p99.
  r.flood = run_flood(cache, cfg);
  for (usize pass = 1; pass < cfg.passes; ++pass) {
    const FloodResult again = run_flood(cache, cfg);
    if (again.light.p99_ms < r.flood.light.p99_ms) r.flood = again;
  }
  r.p99_ratio = r.flood.light.p99_ms / r.isolated.p99_ms;
  std::cout << "flooded light tenant (" << r.flood.light.samples
            << " samples vs " << cfg.flood_heavy_samples << " x "
            << cfg.heavy_reads << "-read heavy backlog): p50 "
            << r.flood.light.p50_ms << " ms, p99 " << r.flood.light.p99_ms
            << " ms (" << r.p99_ratio << "x isolated; gate <= 5x)\n"
            << "  heavy completed " << r.flood.heavy_completed
            << ", drain-rejected " << r.flood.heavy_drain_rejected << "\n";

  r.saturation = run_saturation(cache, cfg);
  std::cout << "saturation (" << r.saturation.submissions
            << " submissions, 3 tenant profiles, " << r.saturation.reads
            << " reads)\n"
            << "  engine.run         : " << r.saturation.engine_secs << " s ("
            << r.saturation.engine_reads_per_s << " reads/s)\n"
            << "  service            : " << r.saturation.service_secs
            << " s (" << r.saturation.service_reads_per_s << " reads/s)\n"
            << "  throughput ratio   : " << r.saturation.throughput_ratio
            << " (gate >= 0.9)\n"
            << "  queue high water   : " << r.saturation.queue_high_water
            << " samples, " << r.saturation.chunks_dispatched
            << " chunks dispatched\n";

  r.cache_loads = cache.loads();
  r.cache_hits = cache.hits();
  std::cout << "index cache: " << r.cache_loads << " load(s), "
            << r.cache_hits << " hits across every phase\n";

  JsonObject config_json;
  config_json.add("workers", static_cast<u64>(cfg.workers))
      .add("chunk_size", static_cast<u64>(cfg.chunk_size))
      .add("light_reads", static_cast<u64>(cfg.light_reads))
      .add("heavy_reads", static_cast<u64>(cfg.heavy_reads))
      .add("saturation_per_tenant",
           static_cast<u64>(cfg.saturation_per_tenant))
      .add("passes", static_cast<u64>(cfg.passes));
  JsonObject identity_json;
  identity_json.add("identity_ok", static_cast<u64>(r.identity.identity_ok))
      .add("identity_reads", r.identity.reads);
  JsonObject isolated_json;
  isolated_json.add("isolated_samples", r.isolated.samples)
      .add("isolated_p50_ms", r.isolated.p50_ms)
      .add("isolated_p99_ms", r.isolated.p99_ms);
  JsonObject flood_json;
  flood_json.add("flood_samples", r.flood.light.samples)
      .add("flood_p50_ms", r.flood.light.p50_ms)
      .add("flood_p99_ms", r.flood.light.p99_ms)
      .add("p99_ratio", r.p99_ratio)
      .add("heavy_completed", r.flood.heavy_completed)
      .add("heavy_drain_rejected", r.flood.heavy_drain_rejected);
  JsonObject saturation_json;
  saturation_json.add("submissions", r.saturation.submissions)
      .add("saturation_reads", r.saturation.reads)
      .add("engine_secs", r.saturation.engine_secs)
      .add("service_secs", r.saturation.service_secs)
      .add("engine_reads_per_s", r.saturation.engine_reads_per_s)
      .add("service_reads_per_s", r.saturation.service_reads_per_s)
      .add("throughput_ratio", r.saturation.throughput_ratio)
      .add("queue_high_water", static_cast<u64>(r.saturation.queue_high_water))
      .add("chunks_dispatched", r.saturation.chunks_dispatched);
  JsonObject cache_json;
  cache_json.add("cache_loads", r.cache_loads).add("cache_hits", r.cache_hits);
  JsonObject root;
  root.add("bench", "service")
      .add("schema_version", 1)
      .add("smoke", cfg.smoke)
      .add("config", config_json)
      .add("identity", identity_json)
      .add("isolated", isolated_json)
      .add("flood", flood_json)
      .add("saturation", saturation_json)
      .add("cache", cache_json);
  root.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int failures = check_results(baseline_path, r);
    if (failures) {
      std::cerr << failures << " smoke check(s) failed\n";
      return 1;
    }
    std::cout << "smoke checks passed vs " << baseline_path << "\n";
  }
  return 0;
}
