// INIT — §III.A: the smaller release-111 index "reduces the initial
// overhead associated with downloading and loading index to shared
// memory".
//
// Two measurements:
//  1. Virtual, paper scale: S3 download + shared-memory load time per
//     instance type for the 85 GiB vs 29.5 GiB index objects, on both
//     load paths (stream vs the v3 mmap attach, which shrinks the load
//     term by StageTimeModel::mmap_attach_speedup).
//  2. Real, synthetic scale: build/save wall times plus the three real
//     load paths (v2 stream, v3 stream, v3 mmap attach) of this repo's
//     actual index files for both releases.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "core/report.h"
#include "core/stage_model.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double time_call(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const StageTimeModel model;

  std::cout << "INIT part 1: modeled instance-boot index initialization\n";
  Table table({"instance", "NIC", "init r108 (85 GiB)", "init r111 (29.5 GiB)",
               "r111 mmap", "speedup", "mmap speedup"});
  for (const char* name :
       {"r6a.2xlarge", "r6a.4xlarge", "r6a.8xlarge", "m6a.8xlarge"}) {
    const InstanceType& type = instance_type(name);
    const VirtualDuration init108 =
        model.index_init_time(ByteSize::from_gib(kPaperIndexGib108), type);
    const VirtualDuration init111 =
        model.index_init_time(ByteSize::from_gib(kPaperIndexGib111), type);
    const VirtualDuration init111_mmap = model.index_init_time(
        ByteSize::from_gib(kPaperIndexGib111), type, IndexLoadPath::kMmap);
    table.add_row({name, strf("%.2f Gbps", type.network_gbps), init108.str(),
                   init111.str(), init111_mmap.str(),
                   strf("%.2fx", init108 / init111),
                   strf("%.2fx", init108 / init111_mmap)});
  }
  table.print(std::cout);
  std::cout << "(85/29.5 = 2.88x less data to move per instance boot; the\n"
            << " mmap column additionally divides the memory-load term by "
            << strf("%.0fx", model.mmap_attach_speedup) << ")\n\n";

  std::cout << "INIT part 2: real synthetic-index build/save/load timings\n";
  const BenchWorld& w = bench_world();
  Table real({"release", "index size", "build (s)", "save (s)",
              "v2 stream (s)", "v3 stream (s)", "v3 mmap (s)"});
  for (const auto& [label, assembly] :
       {std::pair{"108", &w.r108}, std::pair{"111", &w.r111}}) {
    GenomeIndex built;
    const double build_secs =
        time_call([&] { built = GenomeIndex::build(*assembly); });
    const std::string v2_path =
        std::string("/tmp/staratlas_init_v2_") + label + ".bin";
    const std::string v3_path =
        std::string("/tmp/staratlas_init_v3_") + label + ".bin";
    const double save_secs =
        time_call([&] { built.save_file(v3_path, GenomeIndex::kVersionV3); });
    built.save_file(v2_path, GenomeIndex::kVersionV2);
    GenomeIndex loaded;
    const double v2_stream_secs = time_call(
        [&] { loaded = GenomeIndex::load_file(v2_path, IndexLoadMode::kStream); });
    const double v3_stream_secs = time_call(
        [&] { loaded = GenomeIndex::load_file(v3_path, IndexLoadMode::kStream); });
    const double v3_mmap_secs =
        MappedFile::supported()
            ? time_call([&] {
                loaded = GenomeIndex::load_file(v3_path, IndexLoadMode::kMmap);
              })
            : 0.0;
    real.add_row({label, built.stats().total().str(), strf("%.3f", build_secs),
                  strf("%.3f", save_secs), strf("%.3f", v2_stream_secs),
                  strf("%.3f", v3_stream_secs), strf("%.6f", v3_mmap_secs)});
    std::remove(v2_path.c_str());
    std::remove(v3_path.c_str());
  }
  real.print(std::cout);
  return 0;
}
