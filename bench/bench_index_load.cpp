// INIT — §III.A: the smaller release-111 index "reduces the initial
// overhead associated with downloading and loading index to shared
// memory".
//
// Two measurements:
//  1. Virtual, paper scale: S3 download + shared-memory load time per
//     instance type for the 85 GiB vs 29.5 GiB index objects.
//  2. Real, synthetic scale: build/save/load wall times of this repo's
//     actual index files for both releases.

#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "core/report.h"
#include "core/stage_model.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double time_call(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const StageTimeModel model;

  std::cout << "INIT part 1: modeled instance-boot index initialization\n";
  Table table({"instance", "NIC", "init r108 (85 GiB)", "init r111 (29.5 GiB)",
               "speedup"});
  for (const char* name :
       {"r6a.2xlarge", "r6a.4xlarge", "r6a.8xlarge", "m6a.8xlarge"}) {
    const InstanceType& type = instance_type(name);
    const VirtualDuration init108 =
        model.index_init_time(ByteSize::from_gib(kPaperIndexGib108), type);
    const VirtualDuration init111 =
        model.index_init_time(ByteSize::from_gib(kPaperIndexGib111), type);
    table.add_row({name, strf("%.2f Gbps", type.network_gbps), init108.str(),
                   init111.str(), strf("%.2fx", init108 / init111)});
  }
  table.print(std::cout);
  std::cout << "(85/29.5 = 2.88x less data to move per instance boot)\n\n";

  std::cout << "INIT part 2: real synthetic-index build/save/load timings\n";
  const BenchWorld& w = bench_world();
  Table real({"release", "index size", "build (s)", "save (s)", "load (s)"});
  for (const auto& [label, assembly] :
       {std::pair{"108", &w.r108}, std::pair{"111", &w.r111}}) {
    GenomeIndex built;
    const double build_secs =
        time_call([&] { built = GenomeIndex::build(*assembly); });
    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    const double save_secs = time_call([&] { built.save(buffer); });
    GenomeIndex loaded;
    const double load_secs =
        time_call([&] { loaded = GenomeIndex::load(buffer); });
    real.add_row({label, built.stats().total().str(), strf("%.3f", build_secs),
                  strf("%.3f", save_secs), strf("%.3f", load_secs)});
  }
  real.print(std::cout);
  return 0;
}
