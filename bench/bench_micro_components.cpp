// MICRO — google-benchmark microbenchmarks for the library's components:
// suffix-array construction, MMP lookups (per-query and batched), the
// X-drop extension kernels at every compiled SIMD level, single-read
// alignment on both releases, FASTQ parsing, SRA container codec, DESeq2
// normalization, and the discrete-event kernel. The per-kernel rows report
// reads(items)/sec plus bytes-compared-per-cycle so the perf trajectory
// attributes hot-path speedups to the kernel that earned them.

#include <benchmark/benchmark.h>

#include <sstream>

#include "align/aligner.h"
#include "align/extend.h"
#include "align/seed.h"
#include "bench_common.h"
#include "cloud/event_sim.h"
#include "common/simd.h"
#include "index/suffix_array.h"
#include "io/fastq.h"
#include "quant/deseq2.h"
#include "sim/catalog.h"
#include "sra/container.h"

#if defined(STARATLAS_X86_SIMD)
#include <x86intrin.h>
#endif

using namespace staratlas;
using namespace staratlas::bench;

namespace {

std::string random_dna(usize length, u64 seed) {
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  std::string text(length, 'A');
  for (auto& c : text) c = kBases[rng.uniform(4)];
  return text;
}

void BM_SuffixArraySais(benchmark::State& state) {
  const std::string text = random_dna(static_cast<usize>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array(text));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SuffixArrayDoublingReference(benchmark::State& state) {
  const std::string text = random_dna(static_cast<usize>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array_doubling(text));
  }
}
BENCHMARK(BM_SuffixArrayDoublingReference)->Arg(10'000)->Arg(100'000);

void BM_IndexBuild(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const Assembly& assembly = state.range(0) == 108 ? w.r108 : w.r111;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenomeIndex::build(assembly));
  }
}
BENCHMARK(BM_IndexBuild)->Arg(108)->Arg(111)->Unit(benchmark::kMillisecond);

void BM_MmpLookup(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const std::string query = w.r111.contig(0).sequence.substr(50'000, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.index111.mmp(query));
  }
}
BENCHMARK(BM_MmpLookup);

/// Cycle counter for the bytes-per-cycle kernel metric; 0 when the build
/// has no TSC (the counter row is then omitted).
u64 cycle_stamp() {
#if defined(STARATLAS_X86_SIMD)
  return __rdtsc();
#else
  return 0;
#endif
}

/// MMP probe kernel: per-query mmp() vs the 64-lane batched walker. The
/// corpus is large (16k read-prefix queries over all contigs, consumed in
/// 256-query slices, one slice per iteration) so the suffix-array walk
/// paths are not resident from the previous iteration — the dependent-load
/// latency the batch interleaving exists to hide is actually present, as
/// it is when the engine streams fresh reads. items == queries resolved,
/// bytes == characters matched (the suffix comparisons the probes pay
/// for).
void BM_MmpProbe(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const bool batched = state.range(0) == 1;
  constexpr usize kSlice = 256;
  constexpr usize kCorpus = 16'384;
  Rng rng(17);
  std::vector<std::string> corpus;
  for (usize i = 0; i < kCorpus; ++i) {
    const std::string& chrom = w.r111.contig(i % w.r111.num_contigs()).sequence;
    const u64 len = 30 + rng.uniform(90);
    std::string q = chrom.substr(rng.uniform(chrom.size() - len), len);
    if (i % 3 == 0) q[rng.uniform(q.size())] = 'N';  // MMP ends mid-query
    corpus.push_back(std::move(q));
  }
  std::vector<std::string_view> views(corpus.begin(), corpus.end());
  std::vector<MmpResult> results(kSlice);

  u64 chars = 0;
  u64 cycles = 0;
  usize slice = 0;
  for (auto _ : state) {
    const auto queries =
        std::span(views).subspan(slice * kSlice, kSlice);
    slice = (slice + 1) % (kCorpus / kSlice);
    const u64 t0 = cycle_stamp();
    if (batched) {
      w.index111.mmp_batch(queries, results);
    } else {
      for (usize i = 0; i < queries.size(); ++i) {
        w.index111.mmp(queries[i], results[i]);
      }
    }
    cycles += cycle_stamp() - t0;
    for (const MmpResult& r : results) chars += r.length;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kSlice));
  state.SetBytesProcessed(static_cast<i64>(chars));
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] =
        static_cast<double>(chars) / static_cast<double>(cycles);
  }
  state.SetLabel(batched ? "mmp_batch" : "mmp_per_query");
}
BENCHMARK(BM_MmpProbe)->Arg(0)->Arg(1);

/// X-drop extension kernels, isolated per SIMD level (Arg 0/1/2 = scalar/
/// sse2/avx2; levels this build lacks are skipped). "exact" rows scan
/// mismatch-free text — the fast path where a seed extends cleanly to the
/// read end; "banded" rows scan 5%-mismatch text, the error-tolerant tail
/// where the x-drop scorer does real work. items == scans, bytes ==
/// bases compared, bytes_per_cycle == comparator throughput.
void BM_XdropExtend(benchmark::State& state) {
  const auto level = static_cast<SimdLevel>(state.range(0));
  const bool banded = state.range(1) == 1;
  const xdrop_kernels::ScanFn fwd = xdrop_kernels::fwd_kernel(level);
  const xdrop_kernels::ScanFn bwd = xdrop_kernels::bwd_kernel(level);
  if (fwd == nullptr || bwd == nullptr) {
    state.SkipWithError("SIMD level not compiled in this build");
    return;
  }
  constexpr usize kLen = 150;  // one read length per scan
  constexpr int kXdrop = 100;
  Rng rng(23);
  std::string text(kLen, 'A');
  for (auto& c : text) c = "ACGT"[rng.uniform(4)];
  std::string query = text;
  if (banded) {
    for (auto& c : query) {
      if (rng.chance(0.05)) c = "ACGT"[rng.uniform(4)];
    }
  }

  u64 compared = 0;
  u64 cycles = 0;
  for (auto _ : state) {
    const u64 t0 = cycle_stamp();
    const auto f = fwd(query.data(), text.data(), kLen, kXdrop);
    const auto b = bwd(query.data() + kLen, text.data() + kLen, kLen, kXdrop);
    cycles += cycle_stamp() - t0;
    compared += f.compared + b.compared;
    benchmark::DoNotOptimize(f.best_matched + b.best_matched);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 2);
  state.SetBytesProcessed(static_cast<i64>(compared));
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] =
        static_cast<double>(compared) / static_cast<double>(cycles);
  }
  state.SetLabel(std::string(simd_level_name(level)) +
                 (banded ? "/banded" : "/exact"));
}
BENCHMARK(BM_XdropExtend)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

/// The full seed phase per-read vs batched — the composite the MMP probe
/// interleaving is meant to move. items == reads seeded.
void BM_SeedPhase(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const bool batched = state.range(0) == 1;
  const AlignerParams params;
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 256, Rng(29));
  std::vector<std::string_view> views;
  for (const auto& read : reads.reads) views.push_back(read.sequence);
  std::vector<SeedSearchResult> results(views.size());
  SeedBatchScratch scratch;

  u64 chars = 0;
  for (auto _ : state) {
    if (batched) {
      find_seeds_batch(w.index111, views, params, results, scratch);
    } else {
      for (usize i = 0; i < views.size(); ++i) {
        find_seeds(w.index111, views[i], params, results[i]);
      }
    }
    for (const auto& r : results) chars += r.chars_matched;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(views.size()));
  state.SetBytesProcessed(static_cast<i64>(chars));
  state.SetLabel(batched ? "find_seeds_batch" : "find_seeds");
}
BENCHMARK(BM_SeedPhase)->Arg(0)->Arg(1);

void BM_AlignRead(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const GenomeIndex& index = state.range(0) == 108 ? w.index108 : w.index111;
  const bool repeat_read = state.range(1) == 1;
  LibraryProfile profile = bulk_rna_profile();
  if (repeat_read) {
    profile.exonic_fraction = 0;
    profile.intronic_fraction = 0;
    profile.intergenic_fraction = 0;
    profile.repeat_fraction = 1.0;
    profile.junk_fraction = 0;
  }
  const ReadSet reads = w.simulator->simulate(profile, 64, Rng(5));
  const Aligner aligner(index, AlignerParams{});
  usize i = 0;
  for (auto _ : state) {
    MappingStats work;
    benchmark::DoNotOptimize(
        aligner.align(reads.reads[i % reads.size()].sequence, work));
    ++i;
  }
}
BENCHMARK(BM_AlignRead)
    ->Args({111, 0})
    ->Args({108, 0})
    ->Args({111, 1})
    ->Args({108, 1});

void BM_FastqParse(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(6));
  std::ostringstream out;
  write_fastq(out, reads.reads);
  const std::string fastq = out.str();
  for (auto _ : state) {
    std::istringstream in(fastq);
    benchmark::DoNotOptimize(read_fastq(in));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(fastq.size()));
}
BENCHMARK(BM_FastqParse);

void BM_SraEncodeDecode(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(7));
  SraMetadata metadata;
  metadata.accession = "SRR1";
  metadata.num_reads = reads.size();
  for (const auto& read : reads.reads) {
    metadata.total_bases += read.sequence.size();
  }
  for (auto _ : state) {
    const auto container = sra_encode(metadata, reads.reads);
    benchmark::DoNotOptimize(sra_decode(container));
  }
}
BENCHMARK(BM_SraEncodeDecode)->Unit(benchmark::kMillisecond);

void BM_Deseq2Normalize(benchmark::State& state) {
  Rng rng(8);
  const usize genes = 500;
  const usize samples = 32;
  std::vector<std::string> ids;
  for (usize g = 0; g < genes; ++g) ids.push_back("G" + std::to_string(g));
  CountMatrix matrix(ids);
  for (usize s = 0; s < samples; ++s) {
    GeneCountsTable table(genes);
    for (auto& count : table.per_gene) count = 1 + rng.uniform(5'000);
    matrix.add_sample("S" + std::to_string(s), table);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deseq2_normalize(matrix));
  }
}
BENCHMARK(BM_Deseq2Normalize);

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    SimKernel kernel;
    u64 counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      kernel.schedule_after(VirtualDuration::seconds(i % 100), [&counter] {
        ++counter;
      });
    }
    kernel.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10'000);
}
BENCHMARK(BM_EventKernel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
