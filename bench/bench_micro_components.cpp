// MICRO — google-benchmark microbenchmarks for the library's components:
// suffix-array construction, MMP lookups, single-read alignment on both
// releases, FASTQ parsing, SRA container codec, DESeq2 normalization, and
// the discrete-event kernel.

#include <benchmark/benchmark.h>

#include <sstream>

#include "align/aligner.h"
#include "bench_common.h"
#include "cloud/event_sim.h"
#include "index/suffix_array.h"
#include "io/fastq.h"
#include "quant/deseq2.h"
#include "sim/catalog.h"
#include "sra/container.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

std::string random_dna(usize length, u64 seed) {
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  std::string text(length, 'A');
  for (auto& c : text) c = kBases[rng.uniform(4)];
  return text;
}

void BM_SuffixArraySais(benchmark::State& state) {
  const std::string text = random_dna(static_cast<usize>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array(text));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SuffixArrayDoublingReference(benchmark::State& state) {
  const std::string text = random_dna(static_cast<usize>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array_doubling(text));
  }
}
BENCHMARK(BM_SuffixArrayDoublingReference)->Arg(10'000)->Arg(100'000);

void BM_IndexBuild(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const Assembly& assembly = state.range(0) == 108 ? w.r108 : w.r111;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenomeIndex::build(assembly));
  }
}
BENCHMARK(BM_IndexBuild)->Arg(108)->Arg(111)->Unit(benchmark::kMillisecond);

void BM_MmpLookup(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const std::string query = w.r111.contig(0).sequence.substr(50'000, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.index111.mmp(query));
  }
}
BENCHMARK(BM_MmpLookup);

void BM_AlignRead(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const GenomeIndex& index = state.range(0) == 108 ? w.index108 : w.index111;
  const bool repeat_read = state.range(1) == 1;
  LibraryProfile profile = bulk_rna_profile();
  if (repeat_read) {
    profile.exonic_fraction = 0;
    profile.intronic_fraction = 0;
    profile.intergenic_fraction = 0;
    profile.repeat_fraction = 1.0;
    profile.junk_fraction = 0;
  }
  const ReadSet reads = w.simulator->simulate(profile, 64, Rng(5));
  const Aligner aligner(index, AlignerParams{});
  usize i = 0;
  for (auto _ : state) {
    MappingStats work;
    benchmark::DoNotOptimize(
        aligner.align(reads.reads[i % reads.size()].sequence, work));
    ++i;
  }
}
BENCHMARK(BM_AlignRead)
    ->Args({111, 0})
    ->Args({108, 0})
    ->Args({111, 1})
    ->Args({108, 1});

void BM_FastqParse(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(6));
  std::ostringstream out;
  write_fastq(out, reads.reads);
  const std::string fastq = out.str();
  for (auto _ : state) {
    std::istringstream in(fastq);
    benchmark::DoNotOptimize(read_fastq(in));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(fastq.size()));
}
BENCHMARK(BM_FastqParse);

void BM_SraEncodeDecode(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(7));
  SraMetadata metadata;
  metadata.accession = "SRR1";
  metadata.num_reads = reads.size();
  for (const auto& read : reads.reads) {
    metadata.total_bases += read.sequence.size();
  }
  for (auto _ : state) {
    const auto container = sra_encode(metadata, reads.reads);
    benchmark::DoNotOptimize(sra_decode(container));
  }
}
BENCHMARK(BM_SraEncodeDecode)->Unit(benchmark::kMillisecond);

void BM_Deseq2Normalize(benchmark::State& state) {
  Rng rng(8);
  const usize genes = 500;
  const usize samples = 32;
  std::vector<std::string> ids;
  for (usize g = 0; g < genes; ++g) ids.push_back("G" + std::to_string(g));
  CountMatrix matrix(ids);
  for (usize s = 0; s < samples; ++s) {
    GeneCountsTable table(genes);
    for (auto& count : table.per_gene) count = 1 + rng.uniform(5'000);
    matrix.add_sample("S" + std::to_string(s), table);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deseq2_normalize(matrix));
  }
}
BENCHMARK(BM_Deseq2Normalize);

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    SimKernel kernel;
    u64 counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      kernel.schedule_after(VirtualDuration::seconds(i % 100), [&counter] {
        ++counter;
      });
    }
    kernel.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10'000);
}
BENCHMARK(BM_EventKernel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
