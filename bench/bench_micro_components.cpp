// MICRO — google-benchmark microbenchmarks for the library's components:
// suffix-array construction, MMP lookups (per-query and batched), the
// X-drop extension kernels at every compiled SIMD level, single-read
// alignment on both releases, FASTQ parsing, SRA container codec, DESeq2
// normalization, and the discrete-event kernel. The per-kernel rows report
// reads(items)/sec plus bytes-compared-per-cycle so the perf trajectory
// attributes hot-path speedups to the kernel that earned them.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <sstream>

#include "align/aligner.h"
#include "align/extend.h"
#include "align/seed.h"
#include "bench_common.h"
#include "cloud/event_sim.h"
#include "common/simd.h"
#include "index/packed_text.h"
#include "index/suffix_array.h"
#include "io/fastq.h"
#include "quant/deseq2.h"
#include "sim/catalog.h"
#include "sra/container.h"

#if defined(STARATLAS_X86_SIMD)
#include <x86intrin.h>
#endif

using namespace staratlas;
using namespace staratlas::bench;

namespace {

std::string random_dna(usize length, u64 seed) {
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  std::string text(length, 'A');
  for (auto& c : text) c = kBases[rng.uniform(4)];
  return text;
}

void BM_SuffixArraySais(benchmark::State& state) {
  const std::string text = random_dna(static_cast<usize>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array(text));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SuffixArrayDoublingReference(benchmark::State& state) {
  const std::string text = random_dna(static_cast<usize>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array_doubling(text));
  }
}
BENCHMARK(BM_SuffixArrayDoublingReference)->Arg(10'000)->Arg(100'000);

void BM_IndexBuild(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const Assembly& assembly = state.range(0) == 108 ? w.r108 : w.r111;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenomeIndex::build(assembly));
  }
}
BENCHMARK(BM_IndexBuild)->Arg(108)->Arg(111)->Unit(benchmark::kMillisecond);

void BM_MmpLookup(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const std::string query = w.r111.contig(0).sequence.substr(50'000, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.index111.mmp(query));
  }
}
BENCHMARK(BM_MmpLookup);

/// Cycle counter for the bytes-per-cycle kernel metric; 0 when the build
/// has no TSC (the counter row is then omitted).
u64 cycle_stamp() {
#if defined(STARATLAS_X86_SIMD)
  return __rdtsc();
#else
  return 0;
#endif
}

/// MMP probe kernel: per-query mmp() vs the 64-lane batched walker. The
/// corpus is large (16k read-prefix queries over all contigs, consumed in
/// 256-query slices, one slice per iteration) so the suffix-array walk
/// paths are not resident from the previous iteration — the dependent-load
/// latency the batch interleaving exists to hide is actually present, as
/// it is when the engine streams fresh reads. items == queries resolved,
/// bytes == characters matched (the suffix comparisons the probes pay
/// for).
void BM_MmpProbe(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const bool batched = state.range(0) == 1;
  constexpr usize kSlice = 256;
  constexpr usize kCorpus = 16'384;
  Rng rng(17);
  std::vector<std::string> corpus;
  for (usize i = 0; i < kCorpus; ++i) {
    const std::string& chrom = w.r111.contig(i % w.r111.num_contigs()).sequence;
    const u64 len = 30 + rng.uniform(90);
    std::string q = chrom.substr(rng.uniform(chrom.size() - len), len);
    if (i % 3 == 0) q[rng.uniform(q.size())] = 'N';  // MMP ends mid-query
    corpus.push_back(std::move(q));
  }
  std::vector<std::string_view> views(corpus.begin(), corpus.end());
  std::vector<MmpResult> results(kSlice);

  u64 chars = 0;
  u64 cycles = 0;
  usize slice = 0;
  for (auto _ : state) {
    const auto queries =
        std::span(views).subspan(slice * kSlice, kSlice);
    slice = (slice + 1) % (kCorpus / kSlice);
    const u64 t0 = cycle_stamp();
    if (batched) {
      w.index111.mmp_batch(queries, results);
    } else {
      for (usize i = 0; i < queries.size(); ++i) {
        w.index111.mmp(queries[i], results[i]);
      }
    }
    cycles += cycle_stamp() - t0;
    for (const MmpResult& r : results) chars += r.length;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kSlice));
  state.SetBytesProcessed(static_cast<i64>(chars));
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] =
        static_cast<double>(chars) / static_cast<double>(cycles);
  }
  state.SetLabel(batched ? "mmp_batch" : "mmp_per_query");
}
BENCHMARK(BM_MmpProbe)->Arg(0)->Arg(1);

/// X-drop extension kernels, isolated per SIMD level (Arg 0/1/2 = scalar/
/// sse2/avx2; levels this build lacks are skipped). "exact" rows scan
/// mismatch-free text — the fast path where a seed extends cleanly to the
/// read end; "banded" rows scan 5%-mismatch text, the error-tolerant tail
/// where the x-drop scorer does real work. items == scans, bytes ==
/// bases compared, bytes_per_cycle == comparator throughput.
void BM_XdropExtend(benchmark::State& state) {
  const auto level = static_cast<SimdLevel>(state.range(0));
  const bool banded = state.range(1) == 1;
  const xdrop_kernels::ScanFn fwd = xdrop_kernels::fwd_kernel(level);
  const xdrop_kernels::ScanFn bwd = xdrop_kernels::bwd_kernel(level);
  if (fwd == nullptr || bwd == nullptr) {
    state.SkipWithError("SIMD level not compiled in this build");
    return;
  }
  constexpr usize kLen = 150;  // one read length per scan
  constexpr int kXdrop = 100;
  Rng rng(23);
  std::string text(kLen, 'A');
  for (auto& c : text) c = "ACGT"[rng.uniform(4)];
  std::string query = text;
  if (banded) {
    for (auto& c : query) {
      if (rng.chance(0.05)) c = "ACGT"[rng.uniform(4)];
    }
  }

  u64 compared = 0;
  u64 cycles = 0;
  for (auto _ : state) {
    const u64 t0 = cycle_stamp();
    const auto f = fwd(query.data(), text.data(), kLen, kXdrop);
    const auto b = bwd(query.data() + kLen, text.data() + kLen, kLen, kXdrop);
    cycles += cycle_stamp() - t0;
    compared += f.compared + b.compared;
    benchmark::DoNotOptimize(f.best_matched + b.best_matched);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 2);
  state.SetBytesProcessed(static_cast<i64>(compared));
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] =
        static_cast<double>(compared) / static_cast<double>(cycles);
  }
  state.SetLabel(std::string(simd_level_name(level)) +
                 (banded ? "/banded" : "/exact"));
}
BENCHMARK(BM_XdropExtend)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

/// Packed text of the bench genome, shared by the packed-kernel rows.
const PackedText& bench_packed_text() {
  static const PackedText packed = [] {
    const BenchWorld& w = bench_world();
    std::string text;
    for (usize c = 0; c < w.r111.num_contigs(); ++c) {
      if (c > 0) text += '#';
      text += w.r111.contig(c).sequence;
    }
    return PackedText::pack(text);
  }();
  return packed;
}

/// Wide-word LCP over 2-bit packed text, isolated per SIMD level (Arg =
/// 0/1/2 = scalar/sse2/avx2). Queries are genome slices with 3%
/// mutations so LCPs of every length occur — the distribution the MMP
/// suffix probes see. items == LCP calls, bytes == bases matched,
/// bytes_per_cycle == comparator throughput (compare the BM_XdropExtend
/// byte-kernel rows: the packed kernels compare 32 bases per word op).
void BM_PackedLcp(benchmark::State& state) {
  const auto level = static_cast<SimdLevel>(state.range(0));
  const PackedLcpFn kernel = packed_lcp_kernel(level);
  if (kernel == nullptr || level > detected_simd_level()) {
    state.SkipWithError("SIMD level not available on this machine");
    return;
  }
  const PackedTextView view = bench_packed_text().view();
  const std::string text = view.decode(0, view.size);

  constexpr usize kQueries = 1'024;
  constexpr u64 kQlen = 150;
  Rng rng(31);
  std::vector<std::vector<u64>> qcodes;
  std::vector<std::vector<u64>> qexc;
  std::vector<u64> tpos;
  for (usize i = 0; i < kQueries; ++i) {
    const u64 pos = rng.uniform(text.size() - kQlen);
    std::string q = text.substr(pos, kQlen);
    for (auto& c : q) {
      if (c == '#') c = 'A';
      if (rng.uniform(100) < 3) c = "ACGTN"[rng.uniform(5)];
    }
    std::vector<u64> codes(packed_code_words(q.size()));
    std::vector<u64> exc(q.size() / 64 + 2);
    if (!pack_query(q, codes.data(), exc.data())) continue;
    qcodes.push_back(std::move(codes));
    qexc.push_back(std::move(exc));
    tpos.push_back(pos);
  }

  u64 matched = 0;
  u64 cycles = 0;
  u64 calls = 0;
  for (auto _ : state) {
    const u64 t0 = cycle_stamp();
    u64 acc = 0;
    for (usize i = 0; i < tpos.size(); ++i) {
      acc += kernel(view, tpos[i], qcodes[i].data(), qexc[i].data(), 0, kQlen);
    }
    cycles += cycle_stamp() - t0;
    matched += acc;
    calls += tpos.size();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<i64>(calls));
  state.SetBytesProcessed(static_cast<i64>(matched));
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] =
        static_cast<double>(matched) / static_cast<double>(cycles);
  }
  state.SetLabel(simd_level_name(level));
}
BENCHMARK(BM_PackedLcp)->Arg(0)->Arg(1)->Arg(2);

/// The striped extension strip primitive: 32-base mismatch-mask + ctz
/// consume against packed text, i.e. the inner loop of the multi-window
/// X-drop DP, vs the per-base cost the BM_XdropExtend rows report. Scans
/// kLen-base windows with 5% mutations (the "banded" shape). items ==
/// window scans, bytes == bases compared.
void BM_XdropStriped(benchmark::State& state) {
  const PackedTextView view = bench_packed_text().view();
  const std::string text = view.decode(0, view.size);
  constexpr u64 kLen = 160;  // 5 full strips per scan
  constexpr usize kWindows = 512;
  Rng rng(37);
  std::vector<std::vector<u64>> qcodes;
  std::vector<std::vector<u64>> qexc;
  std::vector<u64> tpos;
  for (usize i = 0; i < kWindows; ++i) {
    const u64 pos = rng.uniform(text.size() - kLen);
    std::string q = text.substr(pos, kLen);
    for (auto& c : q) {
      if (c == '#') c = 'A';
      if (rng.chance(0.05)) c = "ACGT"[rng.uniform(4)];
    }
    std::vector<u64> codes(packed_code_words(q.size()));
    std::vector<u64> exc(q.size() / 64 + 2);
    if (!pack_query(q, codes.data(), exc.data())) continue;
    qcodes.push_back(std::move(codes));
    qexc.push_back(std::move(exc));
    tpos.push_back(pos);
  }

  u64 compared = 0;
  u64 cycles = 0;
  u64 scans = 0;
  for (auto _ : state) {
    const u64 t0 = cycle_stamp();
    u64 acc = 0;
    for (usize i = 0; i < tpos.size(); ++i) {
      // X-drop strip consume: +1 match / -2 mismatch, break when the
      // score falls kXdrop under the best — the driver's scoring.
      constexpr int kXdrop = 100;
      int score = 0;
      int best = 0;
      for (u64 strip = 0; strip + 32 <= kLen; strip += 32) {
        u32 m = packed_mismatch_mask32(view, tpos[i] + strip,
                                       qcodes[i].data(), qexc[i].data(),
                                       strip);
        u32 pos_in = 0;
        while (pos_in < 32) {
          const u32 rest = m >> pos_in;
          const u32 run =
              rest == 0 ? 32 - pos_in
                        : static_cast<u32>(std::countr_zero(rest));
          score += static_cast<int>(run);
          best = std::max(best, score);
          pos_in += run;
          if (pos_in >= 32) break;
          score -= 2;
          ++pos_in;
          if (score < best - kXdrop) break;
        }
        acc += pos_in;
        if (score < best - kXdrop) break;
      }
    }
    cycles += cycle_stamp() - t0;
    compared += acc;
    scans += tpos.size();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<i64>(scans));
  state.SetBytesProcessed(static_cast<i64>(compared));
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] =
        static_cast<double>(compared) / static_cast<double>(cycles);
  }
  state.SetLabel("striped/packed");
}
BENCHMARK(BM_XdropStriped);

/// The full seed phase per-read vs batched — the composite the MMP probe
/// interleaving is meant to move. items == reads seeded.
void BM_SeedPhase(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const bool batched = state.range(0) == 1;
  const AlignerParams params;
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 256, Rng(29));
  std::vector<std::string_view> views;
  for (const auto& read : reads.reads) views.push_back(read.sequence);
  std::vector<SeedSearchResult> results(views.size());
  SeedBatchScratch scratch;

  u64 chars = 0;
  for (auto _ : state) {
    if (batched) {
      find_seeds_batch(w.index111, views, params, results, scratch);
    } else {
      for (usize i = 0; i < views.size(); ++i) {
        find_seeds(w.index111, views[i], params, results[i]);
      }
    }
    for (const auto& r : results) chars += r.chars_matched;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(views.size()));
  state.SetBytesProcessed(static_cast<i64>(chars));
  state.SetLabel(batched ? "find_seeds_batch" : "find_seeds");
}
BENCHMARK(BM_SeedPhase)->Arg(0)->Arg(1);

void BM_AlignRead(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const GenomeIndex& index = state.range(0) == 108 ? w.index108 : w.index111;
  const bool repeat_read = state.range(1) == 1;
  LibraryProfile profile = bulk_rna_profile();
  if (repeat_read) {
    profile.exonic_fraction = 0;
    profile.intronic_fraction = 0;
    profile.intergenic_fraction = 0;
    profile.repeat_fraction = 1.0;
    profile.junk_fraction = 0;
  }
  const ReadSet reads = w.simulator->simulate(profile, 64, Rng(5));
  const Aligner aligner(index, AlignerParams{});
  usize i = 0;
  for (auto _ : state) {
    MappingStats work;
    benchmark::DoNotOptimize(
        aligner.align(reads.reads[i % reads.size()].sequence, work));
    ++i;
  }
}
BENCHMARK(BM_AlignRead)
    ->Args({111, 0})
    ->Args({108, 0})
    ->Args({111, 1})
    ->Args({108, 1});

void BM_FastqParse(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(6));
  std::ostringstream out;
  write_fastq(out, reads.reads);
  const std::string fastq = out.str();
  for (auto _ : state) {
    std::istringstream in(fastq);
    benchmark::DoNotOptimize(read_fastq(in));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(fastq.size()));
}
BENCHMARK(BM_FastqParse);

void BM_SraEncodeDecode(benchmark::State& state) {
  const BenchWorld& w = bench_world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(7));
  SraMetadata metadata;
  metadata.accession = "SRR1";
  metadata.num_reads = reads.size();
  for (const auto& read : reads.reads) {
    metadata.total_bases += read.sequence.size();
  }
  for (auto _ : state) {
    const auto container = sra_encode(metadata, reads.reads);
    benchmark::DoNotOptimize(sra_decode(container));
  }
}
BENCHMARK(BM_SraEncodeDecode)->Unit(benchmark::kMillisecond);

void BM_Deseq2Normalize(benchmark::State& state) {
  Rng rng(8);
  const usize genes = 500;
  const usize samples = 32;
  std::vector<std::string> ids;
  for (usize g = 0; g < genes; ++g) ids.push_back("G" + std::to_string(g));
  CountMatrix matrix(ids);
  for (usize s = 0; s < samples; ++s) {
    GeneCountsTable table(genes);
    for (auto& count : table.per_gene) count = 1 + rng.uniform(5'000);
    matrix.add_sample("S" + std::to_string(s), table);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deseq2_normalize(matrix));
  }
}
BENCHMARK(BM_Deseq2Normalize);

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    SimKernel kernel;
    u64 counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      kernel.schedule_after(VirtualDuration::seconds(i % 100), [&counter] {
        ++counter;
      });
    }
    kernel.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10'000);
}
BENCHMARK(BM_EventKernel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
