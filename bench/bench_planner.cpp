// PLANNER — campaign planner frontier bench (seventh gated perf point).
//
// Enumerates the planner's search space (instance type x thread cap x
// index load path x spot mix) over a deterministic SRA catalog, prints
// the Pareto frontier over (cost, makespan), and replays frontier points
// through the event simulator to measure estimator-vs-sim error — the
// end-to-end check that the closed-form search and the discrete-event
// truth agree where it matters.
//
// Flags:
//   --smoke             reduced configuration (CI: the bench_planner_smoke
//                       ctest gate) — smaller catalog, fewer validated
//                       frontier points
//   --out PATH          write BENCH JSON results to PATH
//   --baseline PATH     compare against a committed baseline; exit 1 on
//                       schema problems, an empty or non-monotone
//                       frontier, a frontier point whose sim-replay error
//                       exceeds tolerance, or the best candidate's
//                       modeled cost drifting >10% vs the baseline
//
// Cost and makespan here are MODELED quantities (deterministic closed
// form + seeded event sim), so the gate tolerances are about model drift,
// not machine noise.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/planner.h"
#include "core/report.h"
#include "sim/catalog.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

struct PlannerBenchConfig {
  bool smoke = false;
  usize num_samples = 250;
  usize max_validate = 5;
  double deadline_hours = 6.0;
};

const char* load_path_name(IndexLoadPath path) {
  return path == IndexLoadPath::kMmap ? "mmap" : "stream";
}

PlannerQuery build_query(const PlannerBenchConfig& cfg) {
  PlannerQuery query;
  CatalogSpec spec;
  spec.num_samples = cfg.num_samples;
  spec.seed = 61;
  query.catalog = make_catalog(spec);
  query.deadline_hours = cfg.deadline_hours;
  if (cfg.smoke) {
    // A memory-diverse subset (including one infeasible 32 GiB type) so
    // the smoke run exercises feasibility, ranking and validation fast.
    query.instance_names = {"r6a.2xlarge", "r6a.4xlarge", "r6a.8xlarge",
                            "m6a.4xlarge", "c6a.4xlarge", "c6a.8xlarge"};
  }
  query.thread_choices = {0, 16};
  return query;
}

/// Frontier invariant: cost strictly ascends, makespan strictly descends.
bool frontier_monotone(const PlannerResult& result) {
  for (usize i = 1; i < result.frontier.size(); ++i) {
    const PlanCandidate& prev = result.candidates[result.frontier[i - 1]];
    const PlanCandidate& cur = result.candidates[result.frontier[i]];
    if (cur.est_cost_usd() < prev.est_cost_usd()) return false;
    if (cur.est_makespan_hours() >= prev.est_makespan_hours()) return false;
  }
  return true;
}

struct BenchOutcome {
  usize num_candidates = 0;
  usize num_feasible = 0;
  usize frontier_size = 0;
  bool monotone = false;
  bool best_found = false;
  std::string best_instance;
  u32 best_threads = 0;
  std::string best_load_path;
  double best_spot_mix = 0.0;
  double best_cost_usd = 0.0;
  double best_makespan_hours = 0.0;
  usize validated_points = 0;
  double max_makespan_rel_error = 0.0;
  double max_cost_rel_error = 0.0;
};

int check_results(const std::string& baseline_path,
                  const BenchOutcome& outcome) {
  static const char* kRequiredKeys[] = {
      "num_candidates",        "frontier_size",
      "best_cost_usd",         "best_makespan_hours",
      "max_makespan_rel_error", "max_cost_rel_error"};
  const auto baseline = read_json_numbers(baseline_path);
  int failures = 0;
  for (const char* key : kRequiredKeys) {
    if (!baseline.count(key)) {
      std::cerr << "SMOKE FAIL: baseline missing key '" << key << "'\n";
      ++failures;
    }
  }
  if (outcome.frontier_size == 0) {
    std::cerr << "SMOKE FAIL: empty Pareto frontier\n";
    ++failures;
  }
  if (!outcome.monotone) {
    std::cerr << "SMOKE FAIL: frontier is not cost-ascending /"
                 " makespan-descending\n";
    ++failures;
  }
  if (!outcome.best_found) {
    std::cerr << "SMOKE FAIL: no candidate meets the deadline\n";
    ++failures;
  }
  // The index-init term is strictly smaller under mmap at equal hourly
  // rate, so the cheapest constrained candidate must attach, not stream.
  if (outcome.best_load_path != "mmap") {
    std::cerr << "SMOKE FAIL: best candidate streams the index; expected "
                 "mmap (init-cost dominance)\n";
    ++failures;
  }
  // Estimator vs event sim on frontier points: the closed form ignores
  // queueing and interruption rework, so it is biased low — but anything
  // past 35% means the two models diverged structurally.
  const double kTolerance = 0.35;
  if (outcome.validated_points == 0) {
    std::cerr << "SMOKE FAIL: no frontier point was sim-validated\n";
    ++failures;
  }
  if (outcome.max_makespan_rel_error > kTolerance) {
    std::cerr << "SMOKE FAIL: frontier makespan error "
              << outcome.max_makespan_rel_error << " > " << kTolerance
              << " vs event sim\n";
    ++failures;
  }
  if (outcome.max_cost_rel_error > kTolerance) {
    std::cerr << "SMOKE FAIL: frontier cost error "
              << outcome.max_cost_rel_error << " > " << kTolerance
              << " vs event sim\n";
    ++failures;
  }
  // Modeled (deterministic) quantity: >10% drift either way means the
  // cost model changed without the baseline being regenerated.
  if (baseline.count("best_cost_usd")) {
    const double base = baseline.at("best_cost_usd");
    if (outcome.best_cost_usd < 0.9 * base ||
        outcome.best_cost_usd > 1.1 * base) {
      std::cerr << "SMOKE FAIL: best candidate cost " << outcome.best_cost_usd
                << " drifted >10% vs baseline " << base << "\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  PlannerBenchConfig cfg;
  std::string out_path = "BENCH_planner.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      // The planner and sim run in virtual time (milliseconds of wall
      // clock), so smoke keeps the full catalog — the reduction is the
      // instance subset and the validation count.
      cfg.smoke = true;
      cfg.max_validate = 3;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_planner [--smoke] [--out PATH] "
                   "[--baseline PATH]\n";
      return 2;
    }
  }

  const PlannerQuery query = build_query(cfg);
  std::cout << "PLANNER: campaign planner frontier, " << cfg.num_samples
            << " samples, deadline " << cfg.deadline_hours << " h"
            << (cfg.smoke ? " (smoke)" : "") << "\n\n";

  PlannerResult result = plan_campaign(query);
  validate_frontier(query, result, cfg.max_validate);

  BenchOutcome outcome;
  outcome.num_candidates = result.candidates.size();
  for (const PlanCandidate& candidate : result.candidates) {
    if (candidate.feasible) ++outcome.num_feasible;
  }
  outcome.frontier_size = result.frontier.size();
  outcome.monotone = frontier_monotone(result);

  Table frontier_table({"instance", "threads", "load", "spot", "est cost",
                        "est makespan", "sim cost", "sim makespan",
                        "cost err", "mksp err"});
  for (usize i = 0; i < result.frontier.size(); ++i) {
    const PlanCandidate& candidate = result.candidates[result.frontier[i]];
    const FrontierValidation* validation = nullptr;
    for (const FrontierValidation& v : result.validations) {
      if (v.candidate_index == result.frontier[i]) validation = &v;
    }
    frontier_table.add_row(
        {candidate.instance, strf("%u", candidate.threads),
         load_path_name(candidate.load_path),
         strf("%.0f%%", 100.0 * candidate.spot_mix),
         strf("$%.2f", candidate.est_cost_usd()),
         strf("%.2f h", candidate.est_makespan_hours()),
         validation ? strf("$%.2f", validation->sim_cost_usd) : "-",
         validation ? strf("%.2f h", validation->sim_makespan_hours) : "-",
         validation ? strf("%.1f%%", 100.0 * validation->cost_rel_error) : "-",
         validation ? strf("%.1f%%", 100.0 * validation->makespan_rel_error)
                    : "-"});
  }
  std::cout << "Pareto frontier (" << outcome.frontier_size << " of "
            << outcome.num_feasible << " feasible candidates, "
            << outcome.num_candidates << " searched):\n";
  frontier_table.print(std::cout);

  outcome.validated_points = result.validations.size();
  for (const FrontierValidation& validation : result.validations) {
    outcome.max_makespan_rel_error =
        std::max(outcome.max_makespan_rel_error,
                 validation.makespan_rel_error);
    outcome.max_cost_rel_error =
        std::max(outcome.max_cost_rel_error, validation.cost_rel_error);
  }

  if (result.best) {
    const PlanCandidate& best = result.candidates[*result.best];
    outcome.best_found = true;
    outcome.best_instance = best.instance;
    outcome.best_threads = best.threads;
    outcome.best_load_path = load_path_name(best.load_path);
    outcome.best_spot_mix = best.spot_mix;
    outcome.best_cost_usd = best.est_cost_usd();
    outcome.best_makespan_hours = best.est_makespan_hours();
    std::cout << "\nbest under deadline: " << best.instance << " threads="
              << best.threads << " load=" << outcome.best_load_path
              << " spot=" << strf("%.0f%%", 100.0 * best.spot_mix) << " at "
              << strf("$%.2f", outcome.best_cost_usd) << ", "
              << strf("%.2f h", outcome.best_makespan_hours) << "\n";
  } else {
    std::cout << "\nno candidate meets the deadline\n";
  }
  std::cout << "estimator vs event sim on " << outcome.validated_points
            << " frontier points: max cost error "
            << strf("%.1f%%", 100.0 * outcome.max_cost_rel_error)
            << ", max makespan error "
            << strf("%.1f%%", 100.0 * outcome.max_makespan_rel_error) << "\n";

  JsonObject config_json;
  config_json.add("num_samples", static_cast<u64>(cfg.num_samples))
      .add("deadline_hours", cfg.deadline_hours)
      .add("max_validate", static_cast<u64>(cfg.max_validate));
  JsonObject frontier_json;
  for (usize i = 0; i < result.frontier.size(); ++i) {
    const PlanCandidate& candidate = result.candidates[result.frontier[i]];
    JsonObject row;
    row.add("instance", candidate.instance)
        .add("threads", static_cast<u64>(candidate.threads))
        .add("load_path", load_path_name(candidate.load_path))
        .add("spot_mix", candidate.spot_mix)
        .add("cost_usd", candidate.est_cost_usd())
        .add("makespan_hours", candidate.est_makespan_hours());
    frontier_json.add("f" + std::to_string(i), row);
  }
  JsonObject results_json;
  results_json.add("num_candidates", static_cast<u64>(outcome.num_candidates))
      .add("num_feasible", static_cast<u64>(outcome.num_feasible))
      .add("frontier_size", static_cast<u64>(outcome.frontier_size))
      .add("frontier_monotone", outcome.monotone)
      .add("best_found", outcome.best_found)
      .add("best_instance", outcome.best_instance)
      .add("best_threads", static_cast<u64>(outcome.best_threads))
      .add("best_load_path", outcome.best_load_path)
      .add("best_spot_mix", outcome.best_spot_mix)
      .add("best_cost_usd", outcome.best_cost_usd)
      .add("best_makespan_hours", outcome.best_makespan_hours)
      .add("validated_points", static_cast<u64>(outcome.validated_points))
      .add("max_makespan_rel_error", outcome.max_makespan_rel_error)
      .add("max_cost_rel_error", outcome.max_cost_rel_error);
  JsonObject root;
  root.add("bench", "planner")
      .add("schema_version", 1)
      .add("smoke", cfg.smoke)
      .add("config", config_json)
      .add("results", results_json)
      .add("frontier", frontier_json);
  root.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int failures = check_results(baseline_path, outcome);
    if (failures) {
      std::cerr << failures << " smoke check(s) failed\n";
      return 1;
    }
    std::cout << "smoke checks passed vs " << baseline_path << "\n";
  }
  return 0;
}
