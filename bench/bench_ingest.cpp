// INGEST — streaming FASTQ/SRA ingest perf harness.
//
// Measures, with real work on the bench-scale genome world:
//   1. FASTQ parse throughput (MB/s) of the block parser
//      (FastqBlockReader -> ReadBatch arena) vs the getline reader
//      (FastqReader -> per-record std::strings), plus heap allocations
//      per read for both parsers (block steady state must be 0);
//   2. end-to-end parse/align overlap: one sample processed sequentially
//      (fasterq_dump fully, then engine.run) vs streamed
//      (engine.run_stream pulling batches off the SRA decoder while the
//      workers align), 4 threads — streamed must beat sequential;
//   3. steady-state consumer-side allocations and the peak batch-arena
//      footprint of the streaming path.
//
// Emits machine-readable BENCH_ingest.json (schema in EXPERIMENTS.md).
//
// Flags:
//   --smoke             reduced configuration (CI: the bench_ingest_smoke
//                       ctest)
//   --out PATH          output JSON path (default BENCH_ingest.json)
//   --baseline PATH     compare against a committed baseline; exit 1 on
//                       missing schema keys, nonzero steady-state
//                       allocations, or a >30% regression in the parse
//                       speedup or overlap gain

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "align/engine.h"
#include "bench_common.h"
#include "bench_json.h"
#include "common/alloc_counter.h"
#include "io/fastq.h"
#include "io/fastq_block.h"
#include "sra/container.h"
#include "sra/toolkit.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct IngestConfig {
  usize parse_reads = 20'000;
  usize passes = 5;  ///< best-of-N to reject scheduler/frequency noise
  usize e2e_reads = 8'000;
  usize e2e_threads = 4;
  usize e2e_iters = 3;
  bool smoke = false;
};

struct ParseResult {
  double mb_per_sec_getline = 0;
  double mb_per_sec_block = 0;         ///< memory mode (zero-copy input)
  double mb_per_sec_block_stream = 0;  ///< istream mode (256 KiB blocks)
  double parse_speedup = 0;
  double allocs_per_read_getline = 0;
  double allocs_per_read_block_steady = 0;
};

/// Parse throughput over an in-memory FASTQ image (no disk, so the
/// numbers compare the parsers, not the storage).
ParseResult run_parse(const IngestConfig& cfg) {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), cfg.parse_reads, Rng(95));
  std::ostringstream buffer;
  write_fastq(buffer, reads.reads);
  const std::string text = buffer.str();
  const double mb = static_cast<double>(text.size()) / (1024.0 * 1024.0);

  ParseResult out;

  // One stream per parser, rewound between passes so the timed window
  // covers only the parse loop (not the 4 MB istringstream copy or reader
  // construction — both parsers get the same treatment).
  std::istringstream in(text);

  // getline reader: one FastqRecord (3 strings) materialized per read.
  {
    double best_elapsed = 1e30;
    u64 allocs = 0;
    u64 side_effect = 0;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      in.clear();
      in.seekg(0);
      FastqReader reader(in);
      const u64 allocs_before = alloc_counter::thread_allocations();
      const auto start = std::chrono::steady_clock::now();
      while (const auto rec = reader.next()) side_effect += rec->sequence.size();
      best_elapsed = std::min(best_elapsed, seconds_since(start));
      allocs = alloc_counter::thread_allocations() - allocs_before;
    }
    out.mb_per_sec_getline = mb / best_elapsed;
    out.allocs_per_read_getline =
        static_cast<double>(allocs) / static_cast<double>(reads.size());
    if (side_effect == u64(-1)) std::cout << "";  // defeat optimizer
  }

  // Block parser, memory mode (zero-copy input, the mmap'd-file /
  // decoded-container path) into one recycled batch. The warm pass grows
  // the batch arena to the workload's high-water mark; the timed window
  // covers reader construction (the newline index build) plus the whole
  // parse, and the alloc window covers the parse loop, which is steady
  // state and must not allocate at all.
  {
    ReadBatch batch;
    {
      FastqBlockReader warm{std::string_view(text)};
      while (warm.read_batch(batch, 1024) > 0) batch.clear();
    }
    double best_elapsed = 1e30;
    u64 allocs = 0;
    u64 side_effect = 0;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      FastqBlockReader reader{std::string_view(text)};
      const u64 allocs_before = alloc_counter::thread_allocations();
      usize got;
      while ((got = reader.read_batch(batch, 1024)) > 0) {
        for (usize i = 0; i < got; ++i) side_effect += batch.sequence(i).size();
        batch.clear();
      }
      best_elapsed = std::min(best_elapsed, seconds_since(start));
      allocs = alloc_counter::thread_allocations() - allocs_before;
    }
    out.mb_per_sec_block = mb / best_elapsed;
    out.allocs_per_read_block_steady =
        static_cast<double>(allocs) / static_cast<double>(reads.size());
    if (side_effect == u64(-1)) std::cout << "";
  }

  // Block parser, istream mode (256 KiB refills through the same stream
  // the getline reader uses).
  {
    ReadBatch batch;
    double best_elapsed = 1e30;
    u64 side_effect = 0;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      in.clear();
      in.seekg(0);
      FastqBlockReader reader(in);
      const auto start = std::chrono::steady_clock::now();
      usize got;
      while ((got = reader.read_batch(batch, 1024)) > 0) {
        for (usize i = 0; i < got; ++i) side_effect += batch.sequence(i).size();
        batch.clear();
      }
      best_elapsed = std::min(best_elapsed, seconds_since(start));
    }
    out.mb_per_sec_block_stream = mb / best_elapsed;
    if (side_effect == u64(-1)) std::cout << "";
  }

  out.parse_speedup = out.mb_per_sec_block / out.mb_per_sec_getline;
  return out;
}

struct OverlapResult {
  double sequential_secs = 0;
  double streamed_secs = 0;
  double overlap_gain = 0;
  u64 stream_consumer_allocs = ~u64{0};  ///< min over measured runs
  u64 peak_arena_bytes = 0;
  u64 fastq_bytes = 0;
};

/// One sample end to end: full fasterq-dump then align (the batch path)
/// vs decode-while-aligning (run_stream). Same container, same engine.
OverlapResult run_overlap(const IngestConfig& cfg) {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), cfg.e2e_reads, Rng(96));
  SraMetadata metadata;
  metadata.accession = "SRRBENCH";
  metadata.num_reads = reads.size();
  for (const auto& read : reads.reads) {
    metadata.total_bases += read.sequence.size();
  }
  const auto container = sra_encode(metadata, reads.reads);

  EngineConfig config;
  config.num_threads = cfg.e2e_threads;
  config.quant_gene_counts = false;
  AlignmentEngine engine(w.index111, nullptr, config);

  OverlapResult out;

  // Warm both paths once (pool spawn, workspace + slot arena growth).
  engine.run(fasterq_dump(container).reads);
  {
    FasterqDumpStream dump(container);
    const BatchSource source = [&](ReadBatch& batch) {
      return dump.next_batch(batch, config.chunk_size) > 0;
    };
    engine.run_stream(source, metadata.num_reads);
  }

  // Passes are interleaved (sequential, then streamed, each pass) so load
  // and frequency drift on a shared host hits both paths equally; each
  // path keeps its own best-of-passes.
  double best_sequential = 1e30;
  double best_streamed = 1e30;
  for (usize pass = 0; pass < cfg.passes; ++pass) {
    // Sequential: stage 2 completes before stage 3 starts.
    {
      const auto start = std::chrono::steady_clock::now();
      for (usize i = 0; i < cfg.e2e_iters; ++i) {
        const DumpResult dumped = fasterq_dump(container);
        engine.run(dumped.reads);
        out.fastq_bytes = dumped.fastq_bytes.bytes();
      }
      best_sequential = std::min(best_sequential, seconds_since(start));
    }
    // Streamed: the engine's producer thread decodes while workers align.
    {
      const auto start = std::chrono::steady_clock::now();
      for (usize i = 0; i < cfg.e2e_iters; ++i) {
        FasterqDumpStream dump(container);
        const BatchSource source = [&](ReadBatch& batch) {
          return dump.next_batch(batch, config.chunk_size) > 0;
        };
        EngineRunRequest request;
        request.batches = source;
        request.total_reads_hint = metadata.num_reads;
        const AlignmentRun run = engine.execute(request);
        // Minimum across runs: the steady-state claim is that a fully
        // warm run allocates nothing on the consumer side. Which worker
        // threads (and so which workspaces) drain a given run is the
        // scheduler's choice, so a single run can still hit first-touch
        // workspace growth that the warm-up run never exercised.
        out.stream_consumer_allocs =
            std::min(out.stream_consumer_allocs, run.stream_consumer_allocs);
        out.peak_arena_bytes = run.stream_peak_arena_bytes;
      }
      best_streamed = std::min(best_streamed, seconds_since(start));
    }
  }
  out.sequential_secs = best_sequential / static_cast<double>(cfg.e2e_iters);
  out.streamed_secs = best_streamed / static_cast<double>(cfg.e2e_iters);

  out.overlap_gain = out.sequential_secs / out.streamed_secs;
  return out;
}

int check_against_baseline(const std::string& baseline_path,
                           const ParseResult& parse,
                           const OverlapResult& overlap, bool smoke) {
  static const char* kRequiredKeys[] = {
      "mb_per_sec_getline", "mb_per_sec_block", "parse_speedup",
      "allocs_per_read_block_steady", "sequential_secs", "streamed_secs",
      "overlap_gain"};
  const auto baseline = read_json_numbers(baseline_path);
  int failures = 0;
  for (const char* key : kRequiredKeys) {
    if (!baseline.count(key)) {
      std::cerr << "SMOKE FAIL: baseline missing key '" << key << "'\n";
      ++failures;
    }
  }
  if (parse.allocs_per_read_block_steady != 0) {
    std::cerr << "SMOKE FAIL: block parser steady-state allocations per read"
              << " = " << parse.allocs_per_read_block_steady
              << " (expected 0)\n";
    ++failures;
  }
  if (overlap.stream_consumer_allocs != 0) {
    std::cerr << "SMOKE FAIL: streaming consumer allocations = "
              << overlap.stream_consumer_allocs << " (expected 0)\n";
    ++failures;
  }
  // The in-flight window (queue depth x batch arena) is a fixed size, so
  // "peak resident arenas < whole decoded FASTQ" is only a meaningful
  // bound when the input dwarfs the window — which the smoke corpus, by
  // design, does not. Full runs enforce it; stream_test additionally
  // asserts the bound at a controlled queue depth.
  if (!smoke && overlap.peak_arena_bytes >= overlap.fastq_bytes) {
    std::cerr << "SMOKE FAIL: peak batch arenas (" << overlap.peak_arena_bytes
              << " B) not bounded below the decoded FASTQ ("
              << overlap.fastq_bytes << " B)\n";
    ++failures;
  }
  // >30% regression vs the committed baseline fails. Both metrics are
  // in-process ratios, so they transfer across machines.
  const double kKeep = 0.7;
  if (baseline.count("parse_speedup") &&
      parse.parse_speedup < kKeep * baseline.at("parse_speedup")) {
    std::cerr << "SMOKE FAIL: parse_speedup " << parse.parse_speedup
              << " regressed >30% vs baseline "
              << baseline.at("parse_speedup") << "\n";
    ++failures;
  }
  if (baseline.count("overlap_gain") &&
      overlap.overlap_gain < kKeep * baseline.at("overlap_gain")) {
    std::cerr << "SMOKE FAIL: overlap_gain " << overlap.overlap_gain
              << " regressed >30% vs baseline " << baseline.at("overlap_gain")
              << "\n";
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  IngestConfig cfg;
  std::string out_path = "BENCH_ingest.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.parse_reads = 4'000;
      cfg.passes = 3;
      cfg.e2e_reads = 1'500;
      cfg.e2e_iters = 2;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ingest [--smoke] [--out PATH] "
                   "[--baseline PATH]\n";
      return 2;
    }
  }

  std::cout << "INGEST: streaming FASTQ ingest and parse/align overlap"
            << (cfg.smoke ? " (smoke)" : "") << "\n";

  const ParseResult parse = run_parse(cfg);
  std::cout << "parse (" << cfg.parse_reads << " reads, in-memory FASTQ)\n"
            << "  MB/s getline reader        : " << parse.mb_per_sec_getline
            << "\n  MB/s block parser (memory) : " << parse.mb_per_sec_block
            << "\n  MB/s block parser (stream) : "
            << parse.mb_per_sec_block_stream
            << "\n  parse speedup              : " << parse.parse_speedup
            << "x\n  allocs/read getline        : "
            << parse.allocs_per_read_getline
            << "\n  allocs/read block steady   : "
            << parse.allocs_per_read_block_steady << "\n";

  const OverlapResult overlap = run_overlap(cfg);
  std::cout << "end-to-end (" << cfg.e2e_reads << " reads, "
            << cfg.e2e_threads << " threads, dump+align)\n"
            << "  sequential secs/sample     : " << overlap.sequential_secs
            << "\n  streamed secs/sample       : " << overlap.streamed_secs
            << "\n  overlap gain               : " << overlap.overlap_gain
            << "x\n  consumer allocs (steady)   : "
            << overlap.stream_consumer_allocs
            << "\n  peak batch arenas          : " << overlap.peak_arena_bytes
            << " B of " << overlap.fastq_bytes << " B FASTQ\n";

  JsonObject config_json;
  config_json.add("parse_reads", static_cast<u64>(cfg.parse_reads))
      .add("passes", static_cast<u64>(cfg.passes))
      .add("e2e_reads", static_cast<u64>(cfg.e2e_reads))
      .add("e2e_threads", static_cast<u64>(cfg.e2e_threads))
      .add("e2e_iters", static_cast<u64>(cfg.e2e_iters));
  JsonObject parse_json;
  parse_json.add("mb_per_sec_getline", parse.mb_per_sec_getline)
      .add("mb_per_sec_block", parse.mb_per_sec_block)
      .add("mb_per_sec_block_stream", parse.mb_per_sec_block_stream)
      .add("parse_speedup", parse.parse_speedup)
      .add("allocs_per_read_getline", parse.allocs_per_read_getline)
      .add("allocs_per_read_block_steady", parse.allocs_per_read_block_steady);
  JsonObject overlap_json;
  overlap_json.add("sequential_secs", overlap.sequential_secs)
      .add("streamed_secs", overlap.streamed_secs)
      .add("overlap_gain", overlap.overlap_gain)
      .add("stream_consumer_allocs", overlap.stream_consumer_allocs)
      .add("peak_arena_bytes", overlap.peak_arena_bytes)
      .add("fastq_bytes", overlap.fastq_bytes);
  JsonObject root;
  root.add("bench", "ingest")
      .add("schema_version", 1)
      .add("smoke", cfg.smoke)
      .add("config", config_json)
      .add("parse", parse_json)
      .add("overlap", overlap_json);
  root.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int failures =
        check_against_baseline(baseline_path, parse, overlap, cfg.smoke);
    if (failures) {
      std::cerr << failures << " smoke check(s) failed\n";
      return 1;
    }
    std::cout << "smoke checks passed vs " << baseline_path << "\n";
  }
  return 0;
}
