// ABL-ALIGN — sensitivity of the Fig 3 result to aligner tuning.
//
// The release-108 slowdown should be a property of the GENOME, not of one
// parameter choice. This ablation re-measures the r108/r111 time ratio
// and both mapping rates while sweeping the aligner knobs that most
// influence repetitive-sequence work: seed_search_start_lmax (seed
// density), anchor_max_loci (enumeration cap), window_loci_cap (stitching
// DP bound) and multimap_nmax (reporting cap).

#include <iostream>

#include "bench_common.h"
#include "core/report.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

struct Row {
  std::string label;
  AlignerParams params;
};

}  // namespace

int main() {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 6'000, Rng(3131));
  std::cout << "ABL-ALIGN: aligner-parameter sensitivity of the release\n"
            << "slowdown (6000-read bulk sample, real alignment)\n\n";

  std::vector<Row> rows;
  {
    Row base{"defaults", AlignerParams{}};
    rows.push_back(base);
    Row r = base;
    r.label = "seed grid 25 (denser seeds)";
    r.params.seed_search_start_lmax = 25;
    rows.push_back(r);
    r = base;
    r.label = "seed grid 100 (sparser seeds)";
    r.params.seed_search_start_lmax = 100;
    rows.push_back(r);
    r = base;
    r.label = "anchor_max_loci 512";
    r.params.anchor_max_loci = 512;
    rows.push_back(r);
    r = base;
    r.label = "anchor_max_loci 16384";
    r.params.anchor_max_loci = 16'384;
    rows.push_back(r);
    r = base;
    r.label = "window_loci_cap 128";
    r.params.window_loci_cap = 128;
    rows.push_back(r);
    r = base;
    r.label = "multimap_nmax 10 (STAR default)";
    r.params.multimap_nmax = 10;
    rows.push_back(r);
    r = base;
    r.label = "multimap_nmax 200";
    r.params.multimap_nmax = 200;
    rows.push_back(r);
    r = base;
    r.label = "seed_min_length 25";
    r.params.seed_min_length = 25;
    rows.push_back(r);
  }

  Table table({"configuration", "t108(s)", "t111(s)", "slowdown", "map108%",
               "map111%", "delta pp"});
  for (const Row& row : rows) {
    EngineConfig config;
    config.num_threads = 4;
    config.params = row.params;
    AlignmentEngine e108(w.index108, &w.synthesizer->annotation(), config);
    AlignmentEngine e111(w.index111, &w.synthesizer->annotation(), config);
    const AlignmentRun run108 = e108.run(reads);
    const AlignmentRun run111 = e111.run(reads);
    table.add_row(
        {row.label, strf("%.3f", run108.wall_seconds),
         strf("%.3f", run111.wall_seconds),
         strf("%.1fx", run108.wall_seconds / run111.wall_seconds),
         strf("%.1f", 100.0 * run108.stats.mapped_rate()),
         strf("%.1f", 100.0 * run111.stats.mapped_rate()),
         strf("%+.2f", 100.0 * (run108.stats.mapped_rate() -
                                run111.stats.mapped_rate()))});
  }
  table.print(std::cout);
  std::cout << "\nreading: the slowdown persists across every configuration; "
               "only multimap_nmax 10\n(STAR's default) trades mapping-rate "
               "parity for it, which is why the atlas runs nmax=50\n(the "
               "ENCODE long-RNA setting) on scaffold-heavy assemblies.\n";
  return 0;
}
