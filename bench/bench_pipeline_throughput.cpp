// PIPE — end-to-end Transcriptomics Atlas throughput and cost (paper
// Fig 1 + Fig 2 architecture), in virtual time over a 400-accession
// queue with an autoscaled EC2 fleet.
//
// Compares the paper's optimization stack cumulatively:
//   baseline      : release-108 index, no early stopping, on-demand
//   +release 111  : the §III.A genome-release optimization
//   +early stop   : the §III.B optimization
//   +spot         : §II's "spot mode for cheaper processing"
// The release-108 slowdown factor used by the virtual stage model is the
// one MEASURED by this repo's Fig 3 bench machinery (real alignment).

#include <iostream>

#include "bench_common.h"
#include "core/atlas_sim.h"
#include "core/report.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double measure_release_slowdown() {
  // One real-alignment measurement at bench scale, reused by all configs.
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 5'000, Rng(777));
  const double t108 = align_reads(w.index108, reads).wall_seconds;
  const double t111 = align_reads(w.index111, reads).wall_seconds;
  return t108 / t111;
}

}  // namespace

int main() {
  const double slowdown = measure_release_slowdown();
  std::cout << "PIPE: atlas pipeline throughput & cost (virtual time)\n"
            << "measured release-108 slowdown plugged into the stage model: "
            << strf("%.1fx", slowdown) << "\n\n";

  CatalogSpec spec;
  spec.num_samples = 400;
  spec.seed = 99;
  const auto catalog = make_catalog(spec);
  const CatalogSummary summary = summarize(catalog);
  std::cout << "catalog: " << summary.num_samples << " accessions ("
            << summary.num_single_cell << " single-cell), "
            << strf("%.1f TiB", summary.total_fastq.tib())
            << " FASTQ total\n\n";

  struct Config {
    const char* label;
    int release;
    bool early_stop;
    bool spot;
  };
  const Config configs[] = {
      {"baseline (r108, no ES, on-demand)", 108, false, false},
      {"+ release 111 index", 111, false, false},
      {"+ early stopping", 111, true, false},
      {"+ spot instances", 111, true, true},
  };

  Table table({"configuration", "makespan", "EC2 cost", "$/sample",
               "samples/h", "early-stopped", "wasted align h", "interrupts"});
  double baseline_cost = 0.0;
  double final_cost = 0.0;
  for (const Config& config : configs) {
    AtlasConfig atlas;
    atlas.use_release(config.release);
    atlas.stages.release_slowdown_108 = slowdown;
    atlas.early_stop.enabled = config.early_stop;
    atlas.spot = config.spot;
    atlas.asg.max_size = 24;
    atlas.visibility_timeout = VirtualDuration::hours(16);
    atlas.seed = 4242;
    const AtlasReport report = AtlasSimulation(catalog, atlas).run();
    if (config.release == 108) baseline_cost = report.total_cost_usd;
    final_cost = report.total_cost_usd;
    table.add_row({config.label, strf("%.1f h", report.makespan_hours),
                   strf("$%.0f", report.total_cost_usd),
                   strf("$%.2f", report.cost_per_sample_usd()),
                   strf("%.1f", report.throughput_samples_per_hour()),
                   strf("%zu", report.samples_early_stopped),
                   strf("%.1f", report.unnecessary_align_hours),
                   strf("%llu", static_cast<unsigned long long>(
                                    report.interruptions))});
  }
  table.print(std::cout);
  std::cout << "\ncumulative cost reduction vs baseline: "
            << strf("%.1fx", baseline_cost / final_cost)
            << "  (paper reports the ingredients — >12x alignment speedup, "
               "19.5% early-stop saving,\n   spot discounts — not a combined "
               "figure; the combined factor is this simulator's projection)\n";
  return 0;
}
