// SHARD — scatter/gather alignment of one sample, measured and modeled.
//
// Two halves:
//   1. Real work: one bench-scale sample aligned unsharded vs scattered
//      over N in-process shard workers (align_sharded). The merged result
//      must be BYTE-IDENTICAL to the unsharded run — gene counts TSV,
//      junctions TSV, progress log, final log with pinned wall time —
//      and the bench reports the scatter speedup and per-shard
//      efficiency on this box.
//   2. Event-sim economics (core/shard_sim): sweep sample sizes and FaaS
//      worker counts to find where scatter/gather over fn-10gb workers
//      beats one r6a.4xlarge (boot + S3 index download + stream load) on
//      latency and on cost. With Lambda-style per-GB-second pricing the
//      scatter path wins latency from well under 1 GiB but stays above
//      the r6a on cost — the crossover table quantifies both. A second
//      sweep reruns the model with the packed (v4) index footprint —
//      the 29.5 GiB anchor scaled by the measured packed/raw ratio — so
//      the index-download/-load share of both columns shrinks.
//
// Emits machine-readable BENCH_shard.json (schema in EXPERIMENTS.md).
//
// Flags:
//   --smoke             reduced configuration (CI: the bench_shard_smoke
//                       ctest)
//   --out PATH          output JSON path (default BENCH_shard.json)
//   --baseline PATH     compare against a committed baseline; exit 1 on
//                       missing schema keys, a byte-identity failure, a
//                       missing latency crossover, or a >30% regression
//                       of the scatter efficiency vs the baseline
//
// Note on the measured speedup: on a single-core box the shard workers
// time-slice one CPU, so the scatter speedup sits near 1x and the
// efficiency near 1/num_shards — reported honestly (best-of-N passes)
// and gated only against the committed same-box baseline, never against
// an absolute multi-core expectation. Byte identity is the hard gate.

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "align/final_log.h"
#include "align/junctions.h"
#include "align/run_request.h"
#include "align/sharded.h"
#include "bench_common.h"
#include "bench_json.h"
#include "core/shard_sim.h"
#include "io/fastq.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ShardBenchConfig {
  usize reads = 10'000;
  usize num_shards = 4;
  usize threads_per_shard = 1;
  usize passes = 3;
  bool smoke = false;
};

struct MeasuredResult {
  bool identity_ok = false;
  u64 reads = 0;
  double unsharded_secs = 0;
  double sharded_secs = 0;
  double sharded_reads_per_s = 0;
  double speedup = 0;
  double scatter_efficiency = 0;  ///< speedup / num_shards
};

/// Every deterministic artifact of a run, rendered to one string; the
/// sharded/unsharded comparison is byte equality of this (wall pinned).
std::string render_artifacts(AlignmentRun run, u64 total_reads) {
  const BenchWorld& w = bench_world();
  run.wall_seconds = 0.0;
  std::string out = render_final_log(run, total_reads, 100.0);
  out += run.progress_log.render();
  std::ostringstream counts;
  run.gene_counts.write_tsv(counts, w.synthesizer->annotation());
  out += counts.str();
  std::ostringstream sj;
  write_junctions_tsv(sj, run.junctions, w.index111);
  out += sj.str();
  return out;
}

MeasuredResult run_measured(const ShardBenchConfig& cfg) {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), cfg.reads, Rng(90210));
  std::ostringstream fastq_stream;
  write_fastq(fastq_stream, reads.reads);
  const std::string fastq = fastq_stream.str();

  ShardedConfig config;
  config.engine.num_threads = cfg.threads_per_shard;
  config.engine.collect_junctions = true;
  config.engine.progress_check_interval = cfg.reads / 10;
  config.num_shards = cfg.num_shards;

  MeasuredResult out;
  out.reads = cfg.reads;
  out.unsharded_secs = 1e30;
  out.sharded_secs = 1e30;
  AlignmentRun reference;
  ShardedRun sharded;
  for (usize pass = 0; pass < cfg.passes; ++pass) {
    auto start = std::chrono::steady_clock::now();
    reference = align_unsharded_reference(fastq, w.index111,
                                          &w.synthesizer->annotation(), config);
    out.unsharded_secs = std::min(out.unsharded_secs, seconds_since(start));

    start = std::chrono::steady_clock::now();
    {
      // Scatter/gather through the unified run-request entrypoint, same
      // path the CLI takes for --shards.
      AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                             config.engine);
      EngineRunRequest request;
      request.fastq_text = fastq;
      request.num_shards = config.num_shards;
      request.batch_reads = config.batch_reads;
      request.sharded_out = &sharded;
      sharded.merged = engine.execute(request);
    }
    out.sharded_secs = std::min(out.sharded_secs, seconds_since(start));
  }

  out.identity_ok =
      render_artifacts(sharded.merged, sharded.plan.total_reads) ==
      render_artifacts(reference, cfg.reads);
  out.sharded_reads_per_s = static_cast<double>(cfg.reads) / out.sharded_secs;
  out.speedup = out.unsharded_secs / out.sharded_secs;
  out.scatter_efficiency =
      out.speedup / static_cast<double>(cfg.num_shards);
  return out;
}

struct SweepRow {
  double sample_gib = 0;
  double single_secs = 0;
  double single_usd = 0;
  double scatter_secs = 0;  ///< best over worker counts (min makespan)
  double scatter_usd = 0;   ///< cost of that same best-latency config
  usize scatter_workers = 0;
};

struct SweepResult {
  std::vector<SweepRow> rows;
  double latency_crossover_gib = -1;  ///< first size scatter wins latency
  double cost_crossover_gib = -1;     ///< first size scatter wins cost
};

SweepResult run_sweep(double index_gib) {
  const double kSampleGib[] = {0.5, 1, 2, 4, 8, 16, 32, 64};
  const usize kWorkers[] = {16, 32, 64, 128};
  SweepResult out;
  for (const double gib : kSampleGib) {
    SingleInstanceQuery single;
    single.sample_fastq = ByteSize::from_gib(gib);
    single.cloud.index_bytes = ByteSize::from_gib(index_gib);
    single.instance = instance_type("r6a.4xlarge");
    const SingleInstanceResult baseline = simulate_single_instance(single);

    SweepRow row;
    row.sample_gib = gib;
    row.single_secs = baseline.makespan.secs();
    row.single_usd = baseline.cost_usd;
    for (const usize workers : kWorkers) {
      ScatterGatherQuery query;
      query.sample_fastq = ByteSize::from_gib(gib);
      query.cloud.index_bytes = ByteSize::from_gib(index_gib);
      query.num_workers = workers;
      query.worker = faas_class("fn-10gb");
      const ScatterGatherResult result = simulate_scatter_gather(query);
      if (!result.feasible) continue;
      if (row.scatter_workers == 0 ||
          result.makespan.secs() < row.scatter_secs) {
        row.scatter_secs = result.makespan.secs();
        row.scatter_usd = result.cost_usd;
        row.scatter_workers = workers;
      }
    }
    if (out.latency_crossover_gib < 0 && row.scatter_secs < row.single_secs) {
      out.latency_crossover_gib = gib;
    }
    if (out.cost_crossover_gib < 0 && row.scatter_usd < row.single_usd) {
      out.cost_crossover_gib = gib;
    }
    out.rows.push_back(row);
  }
  return out;
}

int check_results(const std::string& baseline_path,
                  const MeasuredResult& measured, const SweepResult& sweep) {
  static const char* kRequiredKeys[] = {
      "identity_ok",          "speedup",
      "scatter_efficiency",   "sharded_reads_per_s",
      "latency_crossover_gib", "cost_crossover_gib"};
  const auto baseline = read_json_numbers(baseline_path);
  int failures = 0;
  for (const char* key : kRequiredKeys) {
    if (!baseline.count(key)) {
      std::cerr << "SMOKE FAIL: baseline missing key '" << key << "'\n";
      ++failures;
    }
  }
  if (!measured.identity_ok) {
    std::cerr << "SMOKE FAIL: sharded run is not byte-identical to the "
                 "unsharded run\n";
    ++failures;
  }
  if (sweep.latency_crossover_gib <= 0) {
    std::cerr << "SMOKE FAIL: no latency crossover found in the sweep "
                 "(scatter never beat the single instance)\n";
    ++failures;
  }
  // >30% regression vs the committed same-box baseline fails; the
  // efficiency is an in-process ratio, so it transfers across machines.
  const double kKeep = 0.7;
  if (baseline.count("scatter_efficiency") &&
      measured.scatter_efficiency <
          kKeep * baseline.at("scatter_efficiency")) {
    std::cerr << "SMOKE FAIL: scatter_efficiency "
              << measured.scatter_efficiency << " regressed >30% vs baseline "
              << baseline.at("scatter_efficiency") << "\n";
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  ShardBenchConfig cfg;
  std::string out_path = "BENCH_shard.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.reads = 3'000;
      cfg.passes = 2;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_shard [--smoke] [--out PATH] "
                   "[--baseline PATH]\n";
      return 2;
    }
  }

  std::cout << "SHARD: scatter/gather alignment, measured + modeled"
            << (cfg.smoke ? " (smoke)" : "") << "\n";

  const MeasuredResult measured = run_measured(cfg);
  std::cout << "measured (" << measured.reads << " reads, "
            << cfg.num_shards << " shards x " << cfg.threads_per_shard
            << " thread)\n"
            << "  byte identity      : "
            << (measured.identity_ok ? "OK" : "FAILED") << "\n"
            << "  unsharded          : " << measured.unsharded_secs << " s\n"
            << "  sharded            : " << measured.sharded_secs << " s ("
            << measured.sharded_reads_per_s << " reads/s)\n"
            << "  speedup            : " << measured.speedup << "x\n"
            << "  scatter efficiency : " << measured.scatter_efficiency
            << "\n";

  const auto print_sweep = [](const SweepResult& sweep) {
    std::cout << "  sample   single(s)  single($)   scatter(s)  scatter($)  "
                 "workers\n";
    for (const SweepRow& row : sweep.rows) {
      std::printf("  %5.1fG  %9.1f  %9.4f   %9.1f  %9.4f  %7zu\n",
                  row.sample_gib, row.single_secs, row.single_usd,
                  row.scatter_secs, row.scatter_usd, row.scatter_workers);
    }
    std::cout << "  latency crossover: "
              << (sweep.latency_crossover_gib > 0
                      ? std::to_string(sweep.latency_crossover_gib) + " GiB"
                      : "none")
              << "\n  cost crossover: "
              << (sweep.cost_crossover_gib > 0
                      ? std::to_string(sweep.cost_crossover_gib) + " GiB"
                      : "none (per-GB-second pricing stays above r6a)")
              << "\n";
  };

  const SweepResult sweep = run_sweep(kPaperIndexGib111);
  std::cout << "crossover sweep (fn-10gb workers vs r6a.4xlarge, index "
            << kPaperIndexGib111 << " GiB)\n";
  print_sweep(sweep);

  // Packed-index (v4) scenario: the same sweep with the index anchor
  // scaled by the measured packed/raw footprint ratio — less to download
  // and load per worker boot and per instance, so both columns shift.
  const double packed_ratio = packed_index_footprint_ratio();
  const double packed_gib = kPaperIndexGib111 * packed_ratio;
  const SweepResult sweep_packed = run_sweep(packed_gib);
  std::printf("crossover sweep, packed v4 index (%.1f GiB, measured %.3fx "
              "ratio)\n",
              packed_gib, packed_ratio);
  print_sweep(sweep_packed);

  JsonObject config_json;
  config_json.add("reads", static_cast<u64>(cfg.reads))
      .add("num_shards", static_cast<u64>(cfg.num_shards))
      .add("threads_per_shard", static_cast<u64>(cfg.threads_per_shard))
      .add("passes", static_cast<u64>(cfg.passes));
  JsonObject measured_json;
  measured_json.add("identity_ok", static_cast<u64>(measured.identity_ok))
      .add("unsharded_secs", measured.unsharded_secs)
      .add("sharded_secs", measured.sharded_secs)
      .add("sharded_reads_per_s", measured.sharded_reads_per_s)
      .add("speedup", measured.speedup)
      .add("scatter_efficiency", measured.scatter_efficiency);
  const auto sweep_to_json = [](const SweepResult& swept) {
    JsonObject json;
    json.add("latency_crossover_gib", swept.latency_crossover_gib)
        .add("cost_crossover_gib", swept.cost_crossover_gib);
    for (const SweepRow& row : swept.rows) {
      // Stable per-size key prefix: "g0p5", "g1", ... (flat-parser safe).
      std::string label = std::to_string(row.sample_gib);
      label.erase(label.find_last_not_of('0') + 1);
      if (!label.empty() && label.back() == '.') label.pop_back();
      for (auto& c : label) {
        if (c == '.') c = 'p';
      }
      JsonObject row_json;
      row_json.add("single_secs", row.single_secs)
          .add("single_usd", row.single_usd)
          .add("scatter_secs", row.scatter_secs)
          .add("scatter_usd", row.scatter_usd)
          .add("scatter_workers", static_cast<u64>(row.scatter_workers));
      json.add("g" + label, row_json);
    }
    return json;
  };
  JsonObject packed_json = sweep_to_json(sweep_packed);
  packed_json.add("packed_index_gib", packed_gib)
      .add("packed_footprint_ratio", packed_ratio);
  JsonObject root;
  root.add("bench", "shard")
      .add("schema_version", 2)
      .add("smoke", cfg.smoke)
      .add("config", config_json)
      .add("measured", measured_json)
      .add("sweep", sweep_to_json(sweep))
      .add("sweep_packed", packed_json);
  root.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int failures = check_results(baseline_path, measured, sweep);
    if (failures) {
      std::cerr << failures << " smoke check(s) failed\n";
      return 1;
    }
    std::cout << "smoke checks passed vs " << baseline_path << "\n";
  }
  return 0;
}
