// FIG3 — "STAR execution time with index generated on different genome
// releases" (paper §III.A, Fig 3).
//
// Reproduction: 49 simulated bulk RNA-seq samples with the paper corpus's
// size distribution are aligned, for real, against the release-108-style
// and release-111-style toplevel indices. We report per-file execution
// times, the FASTQ-size-weighted mean speedup (paper: >12x), the index
// size ratio (paper: 85 GiB vs 29.5 GiB) and the mean mapping-rate
// difference (paper: <1%).

#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "core/report.h"
#include "sim/catalog.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  const BenchWorld& w = bench_world();

  // The 49-file corpus: paper-scale sizes drive synthetic read counts.
  CatalogSpec corpus;
  corpus.num_samples = 49;
  corpus.single_cell_fraction = 0.0;  // Fig 3 used bulk inputs
  corpus.mean_fastq = ByteSize::from_gib(kPaperMeanFastqGib);
  corpus.reads_at_mean = 4'000;
  corpus.min_reads = 600;
  corpus.seed = 31;
  const auto catalog = make_catalog(corpus);
  const CatalogSummary summary = summarize(catalog);

  std::cout << "FIG3: STAR execution time, release-108 vs release-111 index\n"
            << "corpus: " << catalog.size() << " FASTQ files, mean "
            << summary.mean_fastq.str() << " (paper: 49 files, 15.9 GiB mean, "
            << "777 GiB total)\n\n";

  Table table({"sample", "fastq(paper)", "reads", "t108(s)", "t111(s)",
               "speedup", "map108%", "map111%"});
  std::vector<double> speedups;
  std::vector<double> weights;
  std::vector<double> rate_deltas;
  double total108 = 0.0;
  double total111 = 0.0;

  for (const auto& sample : catalog) {
    const ReadSet reads = w.simulator->simulate(
        bulk_rna_profile(), sample.num_reads, Rng(sample.seed));
    const AlignmentRun run108 = align_reads(w.index108, reads);
    const AlignmentRun run111 = align_reads(w.index111, reads);
    const double speedup = run108.wall_seconds / run111.wall_seconds;
    speedups.push_back(speedup);
    weights.push_back(sample.fastq_bytes.gib());
    rate_deltas.push_back(run108.stats.mapped_rate() -
                          run111.stats.mapped_rate());
    total108 += run108.wall_seconds;
    total111 += run111.wall_seconds;
    table.add_row({sample.accession, strf("%.1f GiB", sample.fastq_bytes.gib()),
                   strf("%llu", static_cast<unsigned long long>(reads.size())),
                   strf("%.3f", run108.wall_seconds),
                   strf("%.3f", run111.wall_seconds), strf("%.1fx", speedup),
                   strf("%.1f", 100.0 * run108.stats.mapped_rate()),
                   strf("%.1f", 100.0 * run111.stats.mapped_rate())});
  }
  table.print(std::cout);

  const double weighted_speedup = weighted_mean(speedups, weights);
  const double mean_delta_pct = 100.0 * mean(rate_deltas);
  const ScaleModel scale = index_scale_model();
  const double gib108 = scale.map(w.index108.stats().total()).gib();
  const double gib111 = scale.map(w.index111.stats().total()).gib();

  std::cout << "\npaper vs measured\n";
  Table result({"metric", "paper", "measured"});
  result.add_row({"speedup (weighted by FASTQ size)", ">12x",
                  strf("%.1fx", weighted_speedup)});
  result.add_row({"speedup (aggregate time ratio)", "-",
                  strf("%.1fx", total108 / total111)});
  result.add_row({"index size, release 108", "85 GiB",
                  strf("%.1f GiB (modeled; synthetic %s)", gib108,
                       w.index108.stats().total().str().c_str())});
  result.add_row({"index size, release 111", "29.5 GiB (anchor)",
                  strf("%.1f GiB (anchor; synthetic %s)", gib111,
                       w.index111.stats().total().str().c_str())});
  result.add_row({"mean mapping-rate difference", "<1%",
                  strf("%.2f pp", mean_delta_pct)});
  result.print(std::cout);
  std::cout << "\n(alignment times are real measurements of this repo's "
               "aligner on synthetic\n genomes; 'modeled' sizes use the "
               "linear scale anchored at release 111 = 29.5 GiB)\n";
  return 0;
}
