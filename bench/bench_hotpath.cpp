// HOTPATH — the alignment hot-path perf harness and the first point of
// this repo's perf trajectory.
//
// Measures, with real work on the bench-scale genome world:
//   1. single-thread reads/sec through Aligner::align with a reused
//      (warmed) AlignWorkspace vs a fresh workspace per read — the fresh
//      mode reproduces the pre-workspace allocation behavior, so the
//      ratio is the workspace speedup, measured in-process and therefore
//      mostly machine-independent;
//   2. heap allocations per read in both modes (counting operator-new
//      hook; steady state must be 0);
//   3. engine dispatch overhead on small samples: runs/sec with one
//      pooled engine reused across runs vs a freshly constructed engine
//      per run (pre-change behavior: thread spawn + GeneCounter build
//      every run);
//   4. packed-text (v4) A/B: the same MMP probe corpus resolved through a
//      raw-text (v3) load and a 2-bit packed (v4) load of the same index
//      — the packed/raw throughput ratio is the wide-word LCP speedup,
//      and the packed/raw text-bytes ratio is the footprint shrink the
//      economics layer consumes. Both are in-process ratios.
//
// Emits machine-readable BENCH_hotpath.json (schema in EXPERIMENTS.md).
//
// Flags:
//   --smoke             reduced configuration (CI: the bench_smoke ctest)
//   --out PATH          output JSON path (default BENCH_hotpath.json)
//   --baseline PATH     compare against a committed baseline; exit 1 on
//                       missing schema keys, nonzero steady-state
//                       allocations, or a >30% regression in either
//                       speedup ratio

#include <chrono>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "align/workspace.h"
#include "bench_common.h"
#include "bench_json.h"
#include "common/alloc_counter.h"
#include "common/simd.h"
#include "index/packed_text.h"
#include "sim/catalog.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct HotpathConfig {
  usize num_reads = 2'000;
  usize passes = 7;  ///< best-of-N to reject scheduler/frequency noise
  usize engine_reads = 32;
  usize engine_threads = 4;
  usize engine_iters = 150;
  bool smoke = false;
};

struct SingleThreadResult {
  double reads_per_sec_reused = 0;
  double reads_per_sec_fresh = 0;
  double allocs_per_read_steady = 0;
  double allocs_per_read_fresh = 0;
  double workspace_speedup = 0;
};

/// FIG3-shaped workload: bulk RNA-seq reads against the release-111 index
/// plus a repeat-heavy slice against release-108, the mix that made the
/// paper's Fig 3 slow.
SingleThreadResult run_single_thread(const HotpathConfig& cfg) {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), cfg.num_reads, Rng(93));
  const Aligner aligner(w.index111, AlignerParams{});

  SingleThreadResult out;

  // Fresh mode: workspace + result constructed per read, reproducing the
  // per-read allocation churn of the pre-workspace aligner. Best of N
  // passes: this box's scheduler noise swamps single-pass timings.
  {
    double best_elapsed = 1e30;
    u64 allocs = 0;
    u64 side_effect = 0;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      const u64 allocs_before = alloc_counter::thread_allocations();
      const auto start = std::chrono::steady_clock::now();
      for (const auto& read : reads.reads) {
        MappingStats work;
        AlignWorkspace ws;
        ReadAlignment result;
        aligner.align(read.sequence, ws, work, result);
        side_effect += result.best_score;
      }
      best_elapsed = std::min(best_elapsed, seconds_since(start));
      allocs = alloc_counter::thread_allocations() - allocs_before;
    }
    out.reads_per_sec_fresh = static_cast<double>(reads.size()) / best_elapsed;
    out.allocs_per_read_fresh =
        static_cast<double>(allocs) / static_cast<double>(reads.size());
    if (side_effect == u64(-1)) std::cout << "";  // defeat optimizer
  }

  // Reused mode: one warmed workspace, reads driven through align_batch in
  // engine-sized chunks — the same shape as the engine's consumer loop, so
  // this measures the production steady state (batched seed phase
  // included). Pass 1 warms the buffers and lanes to the workload's
  // high-water marks; measured passes are steady state.
  {
    constexpr usize kChunk = 256;  // EngineConfig::chunk_size default
    AlignWorkspace ws;
    auto run_pass = [&](MappingStats& work) {
      u64 acc = 0;
      AlignBatchLanes& lanes = ws.batch;
      for (usize begin = 0; begin < reads.size(); begin += kChunk) {
        const usize end = std::min(begin + kChunk, reads.size());
        const usize count = end - begin;
        lanes.views.clear();
        for (usize r = begin; r < end; ++r) {
          lanes.views.push_back(reads.reads[r].sequence);
        }
        if (lanes.results.size() < count) lanes.results.resize(count);
        aligner.align_batch(lanes.views, ws, work,
                            std::span(lanes.results).first(count));
        for (usize r = 0; r < count; ++r) {
          acc += lanes.results[r].best_score;
        }
      }
      return acc;
    };
    MappingStats warm_work;
    run_pass(warm_work);
    double best_elapsed = 1e30;
    u64 allocs = 0;
    u64 side_effect = 0;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      const u64 allocs_before = alloc_counter::thread_allocations();
      const auto start = std::chrono::steady_clock::now();
      MappingStats work;
      side_effect += run_pass(work);
      best_elapsed = std::min(best_elapsed, seconds_since(start));
      allocs = alloc_counter::thread_allocations() - allocs_before;
    }
    out.reads_per_sec_reused = static_cast<double>(reads.size()) / best_elapsed;
    out.allocs_per_read_steady =
        static_cast<double>(allocs) / static_cast<double>(reads.size());
    if (side_effect == u64(-1)) std::cout << "";
  }

  out.workspace_speedup = out.reads_per_sec_reused / out.reads_per_sec_fresh;
  return out;
}

struct EngineResult {
  double runs_per_sec_pooled = 0;
  double runs_per_sec_spawn = 0;
  double dispatch_speedup = 0;
};

/// Engine dispatch overhead at high fan-out: many small samples, the
/// serverless-STAR shape where per-invocation setup dominates.
EngineResult run_engine_dispatch(const HotpathConfig& cfg) {
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), cfg.engine_reads, Rng(94));
  EngineConfig config;
  config.num_threads = cfg.engine_threads;
  // Small chunks so every worker participates even on tiny samples.
  config.chunk_size = (cfg.engine_reads + cfg.engine_threads - 1) /
                      cfg.engine_threads;

  EngineResult out;

  // Pooled: one engine, worker pool and workspaces reused every run.
  {
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), config);
    engine.run(reads);  // warm: spawn pool, build counter, size workspaces
    double best_elapsed = 1e30;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      for (usize i = 0; i < cfg.engine_iters; ++i) {
        engine.run(reads);
      }
      best_elapsed = std::min(best_elapsed, seconds_since(start));
    }
    out.runs_per_sec_pooled =
        static_cast<double>(cfg.engine_iters) / best_elapsed;
  }

  // Spawn: a fresh engine per run — pre-change behavior (threads spawned
  // and GeneCounter rebuilt for every sample).
  {
    double best_elapsed = 1e30;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      for (usize i = 0; i < cfg.engine_iters; ++i) {
        AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
        engine.run(reads);
      }
      best_elapsed = std::min(best_elapsed, seconds_since(start));
    }
    out.runs_per_sec_spawn =
        static_cast<double>(cfg.engine_iters) / best_elapsed;
  }

  out.dispatch_speedup = out.runs_per_sec_pooled / out.runs_per_sec_spawn;
  return out;
}

struct PackedResult {
  double queries_per_sec_raw = 0;
  double queries_per_sec_packed = 0;
  double packed_mmp_speedup = 0;
  double text_ratio = 0;  ///< raw text bytes / packed resident bytes
};

/// MMP throughput A/B on raw vs packed loads of the same index. The
/// corpus is BM_MmpProbe-shaped (read prefixes over all contigs, sliced
/// so suffix-array paths are not resident from the previous iteration);
/// outcomes are asserted equal, so the ratio compares identical work.
PackedResult run_packed_ab(const HotpathConfig& cfg) {
  const BenchWorld& w = bench_world();
  // Round-trip through v4 bytes; stream load keeps the A/B apples-to-
  // apples (both sides resident, no page-cache asymmetry).
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  w.index111.save(buf, GenomeIndex::kVersionV4);
  const GenomeIndex packed = GenomeIndex::load(buf);

  constexpr usize kSlice = 256;
  const usize corpus_size = cfg.smoke ? 4'096 : 16'384;
  Rng rng(95);
  std::vector<std::string> corpus;
  for (usize i = 0; i < corpus_size; ++i) {
    const std::string& chrom = w.r111.contig(i % w.r111.num_contigs()).sequence;
    const u64 len = 30 + rng.uniform(90);
    std::string q = chrom.substr(rng.uniform(chrom.size() - len), len);
    if (i % 3 == 0) q[rng.uniform(q.size())] = 'N';
    corpus.push_back(std::move(q));
  }
  std::vector<std::string_view> views(corpus.begin(), corpus.end());
  std::vector<MmpResult> results(kSlice);

  auto throughput = [&](const GenomeIndex& index) {
    double best_elapsed = 1e30;
    for (usize pass = 0; pass < cfg.passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      for (usize begin = 0; begin + kSlice <= views.size(); begin += kSlice) {
        index.mmp_batch(std::span(views).subspan(begin, kSlice), results);
      }
      best_elapsed = std::min(best_elapsed, seconds_since(start));
    }
    return static_cast<double>(views.size()) / best_elapsed;
  };

  // Outcome parity first — a fast wrong kernel must not post a speedup.
  std::vector<MmpResult> raw_results(kSlice);
  for (usize begin = 0; begin + kSlice <= views.size(); begin += kSlice) {
    const auto slice = std::span(views).subspan(begin, kSlice);
    w.index111.mmp_batch(slice, raw_results);
    packed.mmp_batch(slice, results);
    for (usize i = 0; i < kSlice; ++i) {
      if (raw_results[i].length != results[i].length ||
          raw_results[i].interval.lo != results[i].interval.lo ||
          raw_results[i].interval.hi != results[i].interval.hi) {
        std::cerr << "FATAL: packed mmp diverged from raw at query "
                  << begin + i << "\n";
        std::exit(1);
      }
    }
  }

  PackedResult out;
  out.queries_per_sec_raw = throughput(w.index111);
  out.queries_per_sec_packed = throughput(packed);
  out.packed_mmp_speedup =
      out.queries_per_sec_packed / out.queries_per_sec_raw;
  out.text_ratio =
      static_cast<double>(w.index111.stats().text_bytes.bytes()) /
      static_cast<double>(packed.stats().text_bytes.bytes());
  return out;
}

int check_against_baseline(const std::string& baseline_path,
                           const SingleThreadResult& st,
                           const EngineResult& eng,
                           const PackedResult& packed) {
  static const char* kRequiredKeys[] = {
      "reads_per_sec_reused", "reads_per_sec_fresh",  "workspace_speedup",
      "allocs_per_read_steady", "runs_per_sec_pooled", "runs_per_sec_spawn",
      "dispatch_speedup", "packed_mmp_speedup", "packed_text_ratio"};
  const auto baseline = read_json_numbers(baseline_path);
  int failures = 0;
  for (const char* key : kRequiredKeys) {
    if (!baseline.count(key)) {
      std::cerr << "SMOKE FAIL: baseline missing key '" << key << "'\n";
      ++failures;
    }
  }
  if (st.allocs_per_read_steady != 0) {
    std::cerr << "SMOKE FAIL: steady-state allocations per read = "
              << st.allocs_per_read_steady << " (expected 0)\n";
    ++failures;
  }
  // >30% regression vs the committed baseline fails. Both metrics are
  // in-process ratios, so they transfer across machines.
  const double kKeep = 0.7;
  if (baseline.count("workspace_speedup") &&
      st.workspace_speedup < kKeep * baseline.at("workspace_speedup")) {
    std::cerr << "SMOKE FAIL: workspace_speedup " << st.workspace_speedup
              << " regressed >30% vs baseline "
              << baseline.at("workspace_speedup") << "\n";
    ++failures;
  }
  if (baseline.count("dispatch_speedup") &&
      eng.dispatch_speedup < kKeep * baseline.at("dispatch_speedup")) {
    std::cerr << "SMOKE FAIL: dispatch_speedup " << eng.dispatch_speedup
              << " regressed >30% vs baseline "
              << baseline.at("dispatch_speedup") << "\n";
    ++failures;
  }
  if (baseline.count("packed_mmp_speedup") &&
      packed.packed_mmp_speedup <
          kKeep * baseline.at("packed_mmp_speedup")) {
    std::cerr << "SMOKE FAIL: packed_mmp_speedup "
              << packed.packed_mmp_speedup << " regressed >30% vs baseline "
              << baseline.at("packed_mmp_speedup") << "\n";
    ++failures;
  }
  // The footprint ratio is structural (no timing): ~4x on a genome whose
  // N's cluster, so anything under 3.5x means the overlay regressed.
  if (packed.text_ratio < 3.5) {
    std::cerr << "SMOKE FAIL: packed text ratio " << packed.text_ratio
              << " < 3.5\n";
    ++failures;
  }
  return failures;
}

}  // namespace

/// If the baseline records the seed-commit single-thread throughput
/// (measured on the same machine with the same workload shape), report
/// the end-to-end hot-path speedup against it. Informational only: the
/// absolute number does not transfer across machines, so it is not a
/// smoke gate.
double prechange_speedup(const std::string& baseline_path,
                         const SingleThreadResult& st) {
  if (baseline_path.empty()) return 0;
  const auto baseline = read_json_numbers(baseline_path);
  const auto it = baseline.find("prechange_reads_per_sec");
  if (it == baseline.end() || it->second <= 0) return 0;
  return st.reads_per_sec_reused / it->second;
}

int main(int argc, char** argv) {
  HotpathConfig cfg;
  std::string out_path = "BENCH_hotpath.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.num_reads = 400;
      cfg.passes = 3;
      cfg.engine_iters = 25;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_hotpath [--smoke] [--out PATH] "
                   "[--baseline PATH]\n";
      return 2;
    }
  }

  std::cout << "HOTPATH: allocation-free alignment hot path"
            << (cfg.smoke ? " (smoke)" : "") << "\n";

  const SingleThreadResult st = run_single_thread(cfg);
  std::cout << "single-thread (" << cfg.num_reads << " reads, FIG3 shape)\n"
            << "  reads/sec reused-workspace : " << st.reads_per_sec_reused
            << "\n  reads/sec fresh-workspace  : " << st.reads_per_sec_fresh
            << "\n  workspace speedup          : " << st.workspace_speedup
            << "x\n  allocs/read fresh          : " << st.allocs_per_read_fresh
            << "\n  allocs/read steady state   : " << st.allocs_per_read_steady
            << "\n";

  const EngineResult eng = run_engine_dispatch(cfg);
  std::cout << "engine dispatch (" << cfg.engine_reads << " reads x "
            << cfg.engine_iters << " runs, " << cfg.engine_threads
            << " threads)\n"
            << "  runs/sec pooled engine     : " << eng.runs_per_sec_pooled
            << "\n  runs/sec fresh engine      : " << eng.runs_per_sec_spawn
            << "\n  dispatch speedup           : " << eng.dispatch_speedup
            << "x\n";

  const PackedResult packed = run_packed_ab(cfg);
  std::cout << "packed text A/B (v3 raw vs v4 packed, same MMP corpus)\n"
            << "  queries/sec raw text       : " << packed.queries_per_sec_raw
            << "\n  queries/sec packed text    : "
            << packed.queries_per_sec_packed
            << "\n  packed MMP speedup         : " << packed.packed_mmp_speedup
            << "x\n  resident text shrink       : " << packed.text_ratio
            << "x\n  LCP kernel (calibrated)    : "
            << simd_level_name(packed_lcp_active_level()) << "\n";

  JsonObject config_json;
  config_json.add("num_reads", static_cast<u64>(cfg.num_reads))
      .add("engine_reads", static_cast<u64>(cfg.engine_reads))
      .add("engine_threads", static_cast<u64>(cfg.engine_threads))
      .add("engine_iters", static_cast<u64>(cfg.engine_iters));
  const double vs_prechange = prechange_speedup(baseline_path, st);
  if (vs_prechange > 0) {
    std::cout << "  speedup vs pre-change      : " << vs_prechange << "x\n";
  }

  JsonObject single_json;
  single_json.add("reads_per_sec_reused", st.reads_per_sec_reused)
      .add("reads_per_sec_fresh", st.reads_per_sec_fresh)
      .add("workspace_speedup", st.workspace_speedup)
      .add("allocs_per_read_fresh", st.allocs_per_read_fresh)
      .add("allocs_per_read_steady", st.allocs_per_read_steady);
  if (vs_prechange > 0) {
    single_json.add("speedup_vs_prechange", vs_prechange);
  }
  JsonObject engine_json;
  engine_json.add("runs_per_sec_pooled", eng.runs_per_sec_pooled)
      .add("runs_per_sec_spawn", eng.runs_per_sec_spawn)
      .add("dispatch_speedup", eng.dispatch_speedup);
  JsonObject packed_json;
  packed_json.add("queries_per_sec_raw", packed.queries_per_sec_raw)
      .add("queries_per_sec_packed", packed.queries_per_sec_packed)
      .add("packed_mmp_speedup", packed.packed_mmp_speedup)
      .add("packed_text_ratio", packed.text_ratio);
  JsonObject root;
  root.add("bench", "hotpath")
      .add("schema_version", 2)
      .add("smoke", cfg.smoke)
      .add("config", config_json)
      .add("single_thread", single_json)
      .add("engine", engine_json)
      .add("packed", packed_json);
  root.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int failures = check_against_baseline(baseline_path, st, eng, packed);
    if (failures) {
      std::cerr << failures << " smoke check(s) failed\n";
      return 1;
    }
    std::cout << "smoke checks passed vs " << baseline_path << "\n";
  }
  return 0;
}
