// ABL-ES — ablation of the early-stopping design point (paper §III.B
// chose: decide at 10% of reads, threshold 30% mapped).
//
// Sweeps the checkpoint fraction and mapping-rate threshold over the
// 1000-alignment corpus and reports: hours saved, false stops (samples
// that would have finished above the atlas threshold), and misses
// (below-threshold samples that ran to completion). Also validates the
// checkpoint choice against real alignment: the observed mapping rate as
// a function of progress for one bulk and one single-cell sample.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/early_stopping.h"
#include "core/maprate_model.h"
#include "core/report.h"
#include "sim/catalog.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  // ---- real-alignment view: rate vs progress (why 10% is enough) ----
  const BenchWorld& w = bench_world();
  std::cout << "ABL-ES part 1: mapped-rate trajectory (real alignment)\n";
  Table trajectory({"progress", "bulk map%", "single-cell map%"});
  std::vector<double> bulk_curve;
  std::vector<double> sc_curve;
  for (const bool single_cell : {false, true}) {
    const ReadSet reads = w.simulator->simulate(
        single_cell ? single_cell_profile() : bulk_rna_profile(), 4'000,
        Rng(909));
    EngineConfig config;
    config.num_threads = 1;  // deterministic snapshot positions
    config.progress_check_interval = reads.size() / 20;  // every 5%
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                                 config);
    auto& curve = single_cell ? sc_curve : bulk_curve;
    engine.run(reads, [&](const ProgressSnapshot& snap) {
      curve.push_back(snap.mapped_rate());
      return EngineCommand::kContinue;
    });
  }
  for (usize i = 0; i < std::min(bulk_curve.size(), sc_curve.size()); i += 2) {
    trajectory.add_row({strf("%zu%%", (i + 1) * 5),
                        strf("%.1f", 100.0 * bulk_curve[i]),
                        strf("%.1f", 100.0 * sc_curve[i])});
  }
  trajectory.print(std::cout);
  std::cout << "(the two classes separate long before 10%; the rate is "
               "stable after a few percent)\n\n";

  // ---- corpus sweep ----
  CatalogSpec corpus;
  corpus.num_samples = 1'000;
  corpus.single_cell_fraction = 0.038;
  corpus.seed = 88;
  const auto catalog = make_catalog(corpus);
  const MapRateModel model;  // library defaults (match calibration)
  const double atlas_threshold = 0.30;

  std::cout << "ABL-ES part 2: checkpoint x threshold sweep over "
            << catalog.size() << " alignments\n";
  Table sweep({"checkpoint", "threshold", "stopped", "false stops", "misses",
               "hours saved", "% of total"});
  double total_hours = 0.0;
  for (const auto& sample : catalog) {
    total_hours += sample.fastq_bytes.gib() * kPaperAlignSecsPerGib / 3600.0;
  }

  for (const double checkpoint : {0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    for (const double threshold : {0.20, 0.30, 0.40}) {
      EarlyStopPolicy policy;
      policy.checkpoint_fraction = checkpoint;
      policy.min_mapped_rate = threshold;
      // Checkpoint noise shrinks with the number of reads observed.
      MapRateModel noisy = model;
      noisy.checkpoint_noise_sd =
          model.checkpoint_noise_sd * std::sqrt(0.10 / checkpoint);

      Rng noise(4321);
      usize stopped = 0;
      usize false_stops = 0;
      usize misses = 0;
      double saved_hours = 0.0;
      for (const auto& sample : catalog) {
        const double full_hours =
            sample.fastq_bytes.gib() * kPaperAlignSecsPerGib / 3600.0;
        Rng rate_rng = Rng(sample.seed).fork("true_rate");
        const double true_rate =
            noisy.sample_true_rate(sample.type, rate_rng);
        const double observed = noisy.checkpoint_observation(true_rate, noise);
        if (early_stop_decision(policy, observed)) {
          ++stopped;
          saved_hours += full_hours * (1.0 - checkpoint);
          if (true_rate >= atlas_threshold) ++false_stops;
        } else if (true_rate < atlas_threshold) {
          ++misses;
        }
      }
      sweep.add_row({strf("%.0f%%", 100 * checkpoint),
                     strf("%.0f%%", 100 * threshold), strf("%zu", stopped),
                     strf("%zu", false_stops), strf("%zu", misses),
                     strf("%.1f h", saved_hours),
                     strf("%.1f%%", 100.0 * saved_hours / total_hours)});
    }
  }
  sweep.print(std::cout);
  std::cout << "\npaper's design point (10%, 30%) sits where savings have "
               "plateaued and false stops stay 0 —\nearlier checkpoints add "
               "noise; higher thresholds begin rejecting borderline-usable "
               "libraries.\n";
  return 0;
}
