// Shared setup for the paper-reproduction benches: the bench-scale genome
// world and the paper's anchor constants.
#pragma once

#include <memory>
#include <sstream>

#include "align/engine.h"
#include "align/run_request.h"
#include "genome/synthesizer.h"
#include "index/footprint.h"
#include "index/genome_index.h"
#include "sim/read_simulator.h"

namespace staratlas::bench {

// ------------------------------------------------------------------
// Paper anchors (CLUSTER 2024, Kica et al.) — the numbers the benches
// print next to their measurements.
inline constexpr double kPaperSpeedup = 12.0;          // ">12x" (Fig 3)
inline constexpr double kPaperIndexGib108 = 85.0;      // §III.A
inline constexpr double kPaperIndexGib111 = 29.5;      // §III.A
inline constexpr double kPaperMeanFastqGib = 15.9;     // §III.A corpus
inline constexpr double kPaperFig3Files = 49;          // §III.A corpus
inline constexpr double kPaperTotalFastqGib = 777.0;   // §III.A corpus
inline constexpr double kPaperFig4Runs = 1000;         // §III.B
inline constexpr double kPaperFig4Stopped = 38;        // §III.B
inline constexpr double kPaperFig4TotalHours = 155.8;  // §III.B
inline constexpr double kPaperFig4SavedHours = 30.4;   // §III.B
inline constexpr double kPaperFig4SavedPct = 19.5;     // §III.B
// Derived: STAR seconds per FASTQ GiB on r6a.4xlarge at release 111.
inline constexpr double kPaperAlignSecsPerGib =
    kPaperFig4TotalHours * 3600.0 / (kPaperFig4Runs * kPaperMeanFastqGib);

// ------------------------------------------------------------------
// Bench-scale genome world (bigger than the unit-test world).
struct BenchWorld {
  GenomeSpec spec;
  std::unique_ptr<GenomeSynthesizer> synthesizer;
  Assembly r108;
  Assembly r111;
  GenomeIndex index108;
  GenomeIndex index111;
  std::unique_ptr<ReadSimulator> simulator;
};

inline const BenchWorld& bench_world() {
  static const BenchWorld* instance = [] {
    auto* w = new BenchWorld();
    w->spec.num_chromosomes = 3;
    w->spec.chromosome_length = 300'000;
    w->spec.genes_per_chromosome = 30;
    w->spec.seed = 2024;
    w->synthesizer = std::make_unique<GenomeSynthesizer>(w->spec);
    w->r108 = w->synthesizer->make_release108();
    w->r111 = w->synthesizer->make_release111();
    w->index108 = GenomeIndex::build(w->r108);
    w->index111 = GenomeIndex::build(w->r111);
    w->simulator = std::make_unique<ReadSimulator>(
        w->r111, w->synthesizer->annotation(),
        w->synthesizer->repeat_regions());
    return w;
  }();
  return *instance;
}

/// Scale model mapping synthetic index bytes -> paper GiB, anchored on
/// "the release-111-style index corresponds to 29.5 GiB".
inline ScaleModel index_scale_model() {
  return ScaleModel::calibrate(bench_world().index111.stats().total(),
                               ByteSize::from_gib(kPaperIndexGib111));
}

/// Measured v4/v3 resident-footprint ratio of the bench index (packed
/// 2-bit text + unchanged SA/LUT over the raw-text total), via a real v4
/// round-trip. The economics benches scale the paper's 29.5 GiB anchor by
/// this ratio for their packed-index scenario — measured, not the ideal
/// 4x text shrink, because the SA/LUT sections do not pack.
inline double packed_index_footprint_ratio() {
  const BenchWorld& w = bench_world();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  w.index111.save(buf, GenomeIndex::kVersionV4);
  const GenomeIndex packed = GenomeIndex::load(buf);
  return static_cast<double>(packed.stats().total().bytes()) /
         static_cast<double>(w.index111.stats().total().bytes());
}

/// Aligns a read set on the given index with n threads; real work.
inline AlignmentRun align_reads(const GenomeIndex& index, const ReadSet& reads,
                                usize threads = 4) {
  EngineConfig config;
  config.num_threads = threads;
  AlignmentEngine engine(
      index, &bench_world().synthesizer->annotation(), config);
  EngineRunRequest request;
  request.reads = &reads;
  return engine.execute(request);
}

}  // namespace staratlas::bench
