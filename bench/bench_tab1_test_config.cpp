// TAB1 — the paper's §III.A "Test configuration" block:
//   Instance type: r6a.4xlarge (16 vCPU, 128 GB RAM)
//   Input: 49 FASTQ files (15.9 GiB mean size, 777 GiB total)
//   Index size: 85 GiB (release 108), 29.5 GiB (release 111)
//
// We regenerate every row from this repository's own substrates: the EC2
// catalog, the corpus generator, and the measured synthetic index sizes
// mapped through the release-111 anchor.

#include <iostream>

#include "bench_common.h"
#include "cloud/instance_types.h"
#include "core/report.h"
#include "sim/catalog.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  const BenchWorld& w = bench_world();
  const InstanceType& type = instance_type("r6a.4xlarge");

  CatalogSpec corpus;
  corpus.num_samples = 49;
  corpus.single_cell_fraction = 0.0;
  corpus.mean_fastq = ByteSize::from_gib(kPaperMeanFastqGib);
  corpus.seed = 31;
  const CatalogSummary summary = summarize(make_catalog(corpus));

  const ScaleModel scale = index_scale_model();
  const IndexStats stats108 = w.index108.stats();
  const IndexStats stats111 = w.index111.stats();

  std::cout << "TAB1: test configuration (paper §III.A)\n";
  Table table({"field", "paper", "this repo"});
  table.add_row({"instance type", "r6a.4xlarge", type.name});
  table.add_row({"vCPU", "16", strf("%u", type.vcpus)});
  table.add_row({"RAM", "128 GB", type.memory.str()});
  table.add_row({"input files", "49", strf("%zu", summary.num_samples)});
  table.add_row({"mean FASTQ size", "15.9 GiB",
                 strf("%.1f GiB", summary.mean_fastq.gib())});
  table.add_row({"total FASTQ", "777 GiB",
                 strf("%.0f GiB", summary.total_fastq.gib())});
  table.add_row({"index size (release 108)", "85 GiB",
                 strf("%.1f GiB (modeled)", scale.map(stats108.total()).gib())});
  table.add_row({"index size (release 111)", "29.5 GiB",
                 strf("%.1f GiB (anchor)", scale.map(stats111.total()).gib())});
  table.add_row({"index size ratio 108/111", "2.88x",
                 strf("%.2fx", static_cast<double>(stats108.total().bytes()) /
                                   static_cast<double>(stats111.total().bytes()))});
  table.add_row(
      {"toplevel FASTA ratio 108/111", "~2.9x (85/29.5 follows FASTA)",
       strf("%.2fx", static_cast<double>(w.r108.fasta_size().bytes()) /
                         static_cast<double>(w.r111.fasta_size().bytes()))});
  table.add_row({"contigs (release 108 toplevel)", "~640 (GRCh38 toplevel)",
                 strf("%zu", w.r108.num_contigs())});
  table.add_row({"contigs (release 111 toplevel)", "far fewer",
                 strf("%zu", w.r111.num_contigs())});
  table.print(std::cout);

  std::cout << "\nsynthetic measured index composition:\n";
  Table comp({"release", "text", "suffix array", "prefix LUT", "total"});
  for (const auto& [name, stats] :
       {std::pair{"108", stats108}, std::pair{"111", stats111}}) {
    comp.add_row({name, stats.text_bytes.str(), stats.suffix_array_bytes.str(),
                  stats.lut_bytes.str(), stats.total().str()});
  }
  comp.print(std::cout);
  return 0;
}
