// SPOT — §II: instances "can be run in spot mode for cheaper processing".
//
// Sweeps spot-market hostility (mean time to interruption) and compares
// against on-demand: cost savings, interruption count, makespan penalty,
// and whether every sample still completes (at-least-once delivery via
// the SQS visibility timeout).

#include <iostream>

#include "bench_common.h"
#include "core/atlas_sim.h"
#include "core/report.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  CatalogSpec spec;
  spec.num_samples = 250;
  spec.seed = 61;
  const auto catalog = make_catalog(spec);

  auto run_config = [&](bool spot, double mtti_hours) {
    AtlasConfig config;
    config.use_release(111);
    config.spot = spot;
    config.mean_time_to_interruption = VirtualDuration::hours(mtti_hours);
    config.asg.max_size = 16;
    config.visibility_timeout = VirtualDuration::hours(12);
    config.seed = 2025;
    return AtlasSimulation(catalog, config).run();
  };

  std::cout << "SPOT: spot vs on-demand for the atlas campaign ("
            << catalog.size() << " accessions, r6a.4xlarge, release 111)\n\n";

  const AtlasReport ondemand = run_config(false, 1e6);
  Table table({"mode", "mean TTI", "makespan", "EC2 cost", "$/sample",
               "interrupts", "redelivered", "dead-lettered"});
  table.add_row({"on-demand", "-", strf("%.1f h", ondemand.makespan_hours),
                 strf("$%.0f", ondemand.total_cost_usd),
                 strf("$%.2f", ondemand.cost_per_sample_usd()), "0", "-",
                 strf("%zu", ondemand.samples_dead_lettered)});

  for (const double mtti : {48.0, 12.0, 4.0, 1.5}) {
    const AtlasReport report = run_config(true, mtti);
    table.add_row(
        {"spot", strf("%.1f h", mtti), strf("%.1f h", report.makespan_hours),
         strf("$%.0f", report.total_cost_usd),
         strf("$%.2f", report.cost_per_sample_usd()),
         strf("%llu", static_cast<unsigned long long>(report.interruptions)),
         strf("%zu", report.samples_total - report.samples_completed -
                         report.samples_early_stopped -
                         report.samples_rejected_late -
                         report.samples_dead_lettered),
         strf("%zu", report.samples_dead_lettered)});
  }
  table.print(std::cout);

  const AtlasReport calm_spot = run_config(true, 48.0);
  std::cout << "\npaper claim: spot mode is cheaper. measured: "
            << strf("%.0f%%", 100.0 * (1.0 - calm_spot.total_cost_usd /
                                                 ondemand.total_cost_usd))
            << " cheaper in a calm market (catalog spot discount ~62%), "
               "shrinking as interruptions force rework.\n";
  return 0;
}
