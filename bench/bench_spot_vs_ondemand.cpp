// SPOT — §II: instances "can be run in spot mode for cheaper processing".
//
// Sweeps spot-market hostility (mean time to interruption) and compares
// against on-demand: cost savings, interruption count, makespan penalty,
// the true interruption tax (partial per-stage hours thrown away when an
// instance is reclaimed — workers are stateless, so redelivered samples
// restart from scratch), and whether every sample still completes
// (at-least-once delivery via interruption-notice message return, the
// visibility heartbeat, and the timeout backstop). A final chaos section
// turns on the deterministic FaultInjector so the transfer retry/requeue
// paths run under interruptions at the same time.

#include <iostream>

#include "bench_common.h"
#include "core/atlas_sim.h"
#include "core/report.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  CatalogSpec spec;
  spec.num_samples = 250;
  spec.seed = 61;
  const auto catalog = make_catalog(spec);

  auto run_config = [&](bool spot, double mtti_hours,
                        double transfer_failure_rate = 0.0) {
    AtlasConfig config;
    config.use_release(111);
    config.spot = spot;
    config.mean_time_to_interruption = VirtualDuration::hours(mtti_hours);
    config.asg.max_size = 16;
    config.visibility_timeout = VirtualDuration::hours(12);
    config.seed = 2025;
    if (transfer_failure_rate > 0.0) {
      config.faults.enabled = true;
      config.faults.transfer_failure_rate = transfer_failure_rate;
      config.faults.seed = 777;
    }
    return AtlasSimulation(catalog, config).run();
  };

  std::cout << "SPOT: spot vs on-demand for the atlas campaign ("
            << catalog.size() << " accessions, r6a.4xlarge, release 111)\n\n";

  const AtlasReport ondemand = run_config(false, 1e6);
  Table table({"mode", "mean TTI", "makespan", "EC2 cost", "$/sample",
               "interrupts", "wasted h", "requeues", "dead-lettered"});
  auto add_row = [&table](const std::string& mode, const std::string& tti,
                          const AtlasReport& report) {
    table.add_row(
        {mode, tti, strf("%.1f h", report.makespan_hours),
         strf("$%.0f", report.total_cost_usd),
         strf("$%.2f", report.cost_per_sample_usd()),
         strf("%llu", static_cast<unsigned long long>(report.interruptions)),
         strf("%.1f", report.wasted_hours_interrupted),
         strf("%zu", report.requeues_interrupted + report.requeues_transfer),
         strf("%zu", report.samples_dead_lettered)});
  };
  add_row("on-demand", "-", ondemand);
  for (const double mtti : {48.0, 12.0, 4.0, 1.5}) {
    add_row("spot", strf("%.1f h", mtti), run_config(true, mtti));
  }
  table.print(std::cout);

  const AtlasReport calm_spot = run_config(true, 48.0);
  std::cout << "\npaper claim: spot mode is cheaper. measured: "
            << strf("%.0f%%", 100.0 * (1.0 - calm_spot.total_cost_usd /
                                                 ondemand.total_cost_usd))
            << " cheaper in a calm market (catalog spot discount ~62%), "
               "shrinking as interruptions force rework.\n";

  // Interruption tax breakdown for the hostile market: which stage the
  // reclaims landed in (align dominates — it is where the hours are).
  const AtlasReport hostile = run_config(true, 1.5);
  std::cout << "\nhostile market (mean TTI 1.5 h) interruption tax: "
            << strf("%.1f wasted h across %zu requeues",
                    hostile.wasted_hours_interrupted,
                    hostile.requeues_interrupted)
            << "\n  per stage:";
  for (usize s = 0; s < hostile.wasted_hours_stage.size(); ++s) {
    std::cout << strf(" %s %.2fh", hostile.stage_names[s].c_str(),
                      hostile.wasted_hours_stage[s]);
  }
  std::cout << "\n  heartbeats sent: "
            << strf("%llu",
                    static_cast<unsigned long long>(hostile.heartbeats_sent))
            << ", init hours as actually run: "
            << strf("%.1f (%.1f wasted mid-init)", hostile.init_hours,
                    hostile.wasted_init_hours)
            << "\n";

  // CHAOS: interruptions + injected transfer faults together. The run is
  // deterministic (seeded failure process) and must still complete every
  // accession with zero lost work.
  const AtlasReport chaos = run_config(true, 4.0, /*failure_rate=*/0.15);
  const usize chaos_done = chaos.samples_completed +
                           chaos.samples_early_stopped +
                           chaos.samples_rejected_late;
  std::cout << "\nchaos (spot, mean TTI 4 h, 15% transfer-failure rate, "
               "bounded retry-with-backoff):\n"
            << strf("  %zu/%zu samples terminal, %zu dead-lettered; "
                    "%llu faults injected, %llu retried in place, "
                    "%zu requeued after exhaustion\n",
                    chaos_done, chaos.samples_total,
                    chaos.samples_dead_lettered,
                    static_cast<unsigned long long>(
                        chaos.transfer_faults_injected),
                    static_cast<unsigned long long>(chaos.transfer_retries),
                    chaos.requeues_transfer)
            << strf("  wasted: %.1f h interruption, %.1f h transfer "
                    "retries/backoff; cost $%.0f (vs $%.0f fault-free)\n",
                    chaos.wasted_hours_interrupted,
                    chaos.wasted_hours_transfer, chaos.total_cost_usd,
                    run_config(true, 4.0).total_cost_usd);
  return 0;
}
