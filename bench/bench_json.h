// Minimal JSON emission + flat parsing for the bench harness, so every
// bench can write machine-readable BENCH_*.json result files (the perf
// trajectory future PRs are measured against) without external deps.
//
// Writer: insertion-ordered objects of numbers/strings/bools/nested
// objects. Reader: just enough to pull "key": number pairs back out of a
// previously emitted file for baseline comparison — not a general parser.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace staratlas::bench {

class JsonObject {
 public:
  JsonObject& add(const std::string& key, double value) {
    char buf[64];
    if (std::isfinite(value) && value == std::floor(value) &&
        std::abs(value) < 1e15) {
      std::snprintf(buf, sizeof buf, "%.0f", value);
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", value);
    }
    return add_raw(key, buf);
  }
  JsonObject& add(const std::string& key, u64 value) {
    return add_raw(key, std::to_string(value));
  }
  JsonObject& add(const std::string& key, int value) {
    return add_raw(key, std::to_string(value));
  }
  JsonObject& add(const std::string& key, bool value) {
    return add_raw(key, value ? "true" : "false");
  }
  JsonObject& add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return add_raw(key, quoted);
  }
  JsonObject& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonObject& add(const std::string& key, const JsonObject& child) {
    return add_raw(key, child.str());
  }

  std::string str() const {
    std::ostringstream out;
    out << "{";
    for (usize i = 0; i < fields_.size(); ++i) {
      if (i) out << ", ";
      out << '"' << fields_[i].first << "\": " << fields_[i].second;
    }
    out << "}";
    return out.str();
  }

  /// Pretty form with one top-level field per line (nested objects stay
  /// on their field's line) — stable for diffs of committed results.
  std::string pretty() const {
    std::ostringstream out;
    out << "{\n";
    for (usize i = 0; i < fields_.size(); ++i) {
      out << "  \"" << fields_[i].first << "\": " << fields_[i].second;
      out << (i + 1 < fields_.size() ? ",\n" : "\n");
    }
    out << "}\n";
    return out.str();
  }

  void write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << pretty();
  }

 private:
  JsonObject& add_raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Flat numeric view of a JSON file: every "key": <number> pair in the
/// text, keyed by its unqualified name. Later duplicates win; nesting is
/// ignored. Sufficient for baseline files this header itself emitted.
inline std::map<std::string, double> read_json_numbers(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::map<std::string, double> numbers;
  usize pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const usize key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    usize after = key_end + 1;
    while (after < text.size() && (text[after] == ' ' || text[after] == ':')) {
      ++after;
    }
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + after, &end);
    if (end != text.c_str() + after) numbers[key] = value;
    pos = key_end + 1;
  }
  return numbers;
}

}  // namespace staratlas::bench
