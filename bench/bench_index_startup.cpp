// INDEX STARTUP — the boot path the paper's §III.A init phase models:
// build the index, get it onto disk, and get workers attached to it.
//
// Measures, with real work on a bench-scale genome:
//   1. index build wall time at 1/2/4/8 threads (prefix-bucketed parallel
//      builder vs the sequential SA-IS reference; outputs are
//      property-tested bit-identical, so this is a pure perf knob);
//   2. cold-load throughput of the load paths: v2 stream, v3 stream, v4
//      (packed-text) stream, and v3/v4 mmap attach (the zero-copy
//      O(header) path — the in-process analog of attaching to STAR's shm
//      segment), plus the packed resident-text shrink the v4 sections
//      deliver;
//   3. SharedIndexCache contention: N workers hammering 2 keys with a
//      slow loader — duplicate loads must be zero (single-flight) and
//      loads for distinct keys must overlap rather than serialize.
//
// Emits machine-readable BENCH_index_startup.json (schema in
// EXPERIMENTS.md).
//
// Flags:
//   --smoke             reduced configuration (CI: the
//                       bench_index_startup_smoke ctest)
//   --out PATH          output JSON path (default BENCH_index_startup.json)
//   --baseline PATH     compare against a committed baseline; exit 1 on
//                       missing schema keys, any duplicate cache load,
//                       mmap attach < 5x the v2 stream load, loads for
//                       distinct keys serializing, or a >30% regression
//                       of the tracked ratios vs the baseline
//
// Note on the build numbers: this box may be single-core, in which case
// the parallel builder's extra bookkeeping makes >1-thread builds *slower*
// — reported honestly; the speedup is only gated against the committed
// same-box baseline, never against an absolute multi-core expectation.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "genome/synthesizer.h"
#include "index/shared_cache.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct StartupConfig {
  usize build_chromosomes = 2;
  usize build_chromosome_length = 500'000;
  usize build_passes = 2;
  usize load_passes = 5;
  usize cache_workers = 8;
  double cache_loader_secs = 0.08;
  bool smoke = false;
};

struct BuildResult {
  double secs_1t = 0;
  double secs_2t = 0;
  double secs_4t = 0;
  double secs_8t = 0;
  double speedup_4t = 0;
  u64 text_bytes = 0;
};

BuildResult run_build(const StartupConfig& cfg) {
  GenomeSpec spec;
  spec.num_chromosomes = cfg.build_chromosomes;
  spec.chromosome_length = cfg.build_chromosome_length;
  spec.genes_per_chromosome = 10;
  spec.seed = 77;
  const GenomeSynthesizer synthesizer(spec);
  const Assembly assembly = synthesizer.make_release111();

  BuildResult out;
  const auto timed_build = [&](usize threads) {
    IndexParams params;
    params.num_threads = threads;
    double best = 1e30;
    for (usize pass = 0; pass < cfg.build_passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      const GenomeIndex index = GenomeIndex::build(assembly, params);
      best = std::min(best, seconds_since(start));
      out.text_bytes = index.text_size();
    }
    return best;
  };
  out.secs_1t = timed_build(1);
  out.secs_2t = timed_build(2);
  out.secs_4t = timed_build(4);
  out.secs_8t = timed_build(8);
  out.speedup_4t = out.secs_1t / out.secs_4t;
  return out;
}

struct ColdLoadResult {
  double file_mb_v2 = 0;
  double file_mb_v3 = 0;
  double file_mb_v4 = 0;
  double v2_stream_mb_s = 0;
  double v3_stream_mb_s = 0;
  double v4_stream_mb_s = 0;
  double v3_mmap_attach_mb_s = 0;
  double v3_mmap_attach_secs = 0;
  double v4_mmap_attach_secs = 0;
  double v2_stream_secs = 0;
  double mmap_vs_stream_speedup = 0;
  double packed_text_ratio = 0;  ///< resident text: raw / packed
};

ColdLoadResult run_cold_load(const StartupConfig& cfg) {
  const BenchWorld& w = bench_world();
  const std::string dir = "/tmp";
  const std::string v2_path = dir + "/staratlas_bench_index_v2.bin";
  const std::string v3_path = dir + "/staratlas_bench_index_v3.bin";
  const std::string v4_path = dir + "/staratlas_bench_index_v4.bin";
  w.index111.save_file(v2_path, GenomeIndex::kVersionV2);
  w.index111.save_file(v3_path, GenomeIndex::kVersionV3);
  w.index111.save_file(v4_path, GenomeIndex::kVersionV4);

  const auto file_mb = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return static_cast<double>(in.tellg()) / (1024.0 * 1024.0);
  };
  ColdLoadResult out;
  out.file_mb_v2 = file_mb(v2_path);
  out.file_mb_v3 = file_mb(v3_path);
  out.file_mb_v4 = file_mb(v4_path);

  // "Cold" here means a fresh load into a new GenomeIndex each pass; the
  // page cache stays warm for every path alike, so the comparison
  // isolates the work each loader does per byte, not the disk.
  const auto timed_load = [&](const std::string& path, IndexLoadMode mode) {
    double best = 1e30;
    for (usize pass = 0; pass < cfg.load_passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      const GenomeIndex loaded = GenomeIndex::load_file(path, mode);
      best = std::min(best, seconds_since(start));
      if (loaded.prefix_lut_k() == 0) std::cout << "";  // defeat optimizer
    }
    return best;
  };
  out.v2_stream_secs = timed_load(v2_path, IndexLoadMode::kStream);
  const double v3_stream_secs = timed_load(v3_path, IndexLoadMode::kStream);
  const double v4_stream_secs = timed_load(v4_path, IndexLoadMode::kStream);
  out.v3_mmap_attach_secs =
      MappedFile::supported() ? timed_load(v3_path, IndexLoadMode::kMmap) : 0;
  out.v4_mmap_attach_secs =
      MappedFile::supported() ? timed_load(v4_path, IndexLoadMode::kMmap) : 0;

  out.v2_stream_mb_s = out.file_mb_v2 / out.v2_stream_secs;
  out.v3_stream_mb_s = out.file_mb_v3 / v3_stream_secs;
  out.v4_stream_mb_s = out.file_mb_v4 / v4_stream_secs;
  if (out.v3_mmap_attach_secs > 0) {
    out.v3_mmap_attach_mb_s = out.file_mb_v3 / out.v3_mmap_attach_secs;
    out.mmap_vs_stream_speedup = out.v2_stream_secs / out.v3_mmap_attach_secs;
  }
  // Packed resident footprint vs raw — what IndexStats feeds the
  // rightsizing/faas models.
  {
    const GenomeIndex packed =
        GenomeIndex::load_file(v4_path, IndexLoadMode::kStream);
    out.packed_text_ratio =
        static_cast<double>(w.index111.stats().text_bytes.bytes()) /
        static_cast<double>(packed.stats().text_bytes.bytes());
  }
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  std::remove(v4_path.c_str());
  return out;
}

struct CacheResult {
  u64 loader_invocations = 0;
  u64 duplicate_loads = 0;
  u64 hits = 0;
  double wall_secs = 0;
  double concurrency_ratio = 0;  ///< (keys x loader time) / wall
};

CacheResult run_cache(const StartupConfig& cfg) {
  GenomeSpec spec;
  spec.num_chromosomes = 1;
  spec.chromosome_length = 20'000;
  spec.genes_per_chromosome = 2;
  spec.seed = 5;
  const GenomeSynthesizer synthesizer(spec);
  const Assembly assembly = synthesizer.make_release111();

  SharedIndexCache cache(ByteSize::from_gib(1.0));
  std::atomic<u64> invocations{0};
  const auto loader = [&] {
    ++invocations;
    // Dominated by a sleep standing in for the S3 download + load — the
    // part the cache must not duplicate or serialize across keys.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        cfg.cache_loader_secs));
    return GenomeIndex::build(assembly);
  };
  const std::vector<std::string> keys = {"r108", "r111"};

  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (usize t = 0; t < cfg.cache_workers; ++t) {
    workers.emplace_back([&, t] {
      auto index = cache.acquire(keys[t % keys.size()], loader);
      if (index == nullptr) std::abort();
    });
  }
  for (auto& worker : workers) worker.join();

  CacheResult out;
  out.wall_secs = seconds_since(start);
  out.loader_invocations = invocations.load();
  out.duplicate_loads = out.loader_invocations - keys.size();
  out.hits = cache.hits();
  // Two keys, each needing one >=loader_secs load. Serialized (the old
  // lock-across-load design) the wall is >= 2x loader_secs; single-flight
  // with per-key parallelism it is ~1x (sleeps overlap even on one core).
  out.concurrency_ratio =
      static_cast<double>(keys.size()) * cfg.cache_loader_secs / out.wall_secs;
  return out;
}

int check_results(const std::string& baseline_path, const BuildResult& build,
                  const ColdLoadResult& cold, const CacheResult& cache) {
  static const char* kRequiredKeys[] = {
      "secs_1t",           "secs_4t",
      "speedup_4t",        "v2_stream_mb_s",
      "v3_mmap_attach_mb_s", "mmap_vs_stream_speedup",
      "duplicate_loads",   "concurrency_ratio"};
  const auto baseline = read_json_numbers(baseline_path);
  int failures = 0;
  for (const char* key : kRequiredKeys) {
    if (!baseline.count(key)) {
      std::cerr << "SMOKE FAIL: baseline missing key '" << key << "'\n";
      ++failures;
    }
  }
  if (cache.duplicate_loads != 0) {
    std::cerr << "SMOKE FAIL: duplicate cache loads = "
              << cache.duplicate_loads << " (single-flight demands 0)\n";
    ++failures;
  }
  if (cache.concurrency_ratio < 1.5) {
    std::cerr << "SMOKE FAIL: cache concurrency ratio "
              << cache.concurrency_ratio
              << " < 1.5 (distinct-key loads serialized)\n";
    ++failures;
  }
  if (MappedFile::supported() && cold.mmap_vs_stream_speedup < 5.0) {
    std::cerr << "SMOKE FAIL: mmap attach only " << cold.mmap_vs_stream_speedup
              << "x the v2 stream load (need >= 5x)\n";
    ++failures;
  }
  // Structural, not timing: the paged overlay must keep the packed
  // resident text close to the ideal 4x under 1 byte/base.
  if (cold.packed_text_ratio < 3.5) {
    std::cerr << "SMOKE FAIL: packed text ratio " << cold.packed_text_ratio
              << " < 3.5\n";
    ++failures;
  }
  // >30% regression vs the committed same-box baseline fails. Both are
  // in-process ratios, so they transfer across machines. The mmap attach
  // speedup is deliberately NOT baseline-gated: the attach is
  // microseconds, so run-to-run jitter swamps a relative comparison —
  // the absolute >= 5x gate above carries that contract.
  const double kKeep = 0.7;
  const auto keep = [&](const char* key, double now) {
    if (baseline.count(key) && now < kKeep * baseline.at(key)) {
      std::cerr << "SMOKE FAIL: " << key << " " << now
                << " regressed >30% vs baseline " << baseline.at(key) << "\n";
      ++failures;
    }
  };
  keep("speedup_4t", build.speedup_4t);
  keep("concurrency_ratio", cache.concurrency_ratio);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  StartupConfig cfg;
  std::string out_path = "BENCH_index_startup.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.build_chromosomes = 1;
      cfg.build_chromosome_length = 150'000;
      cfg.build_passes = 1;
      cfg.load_passes = 3;
      // loader sleep stays at the full value: it must dominate the
      // post-sleep tiny-index build for the concurrency ratio to be a
      // clean signal on a one-core box.
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_index_startup [--smoke] [--out PATH] "
                   "[--baseline PATH]\n";
      return 2;
    }
  }

  std::cout << "INDEX STARTUP: build / cold load / cache contention"
            << (cfg.smoke ? " (smoke)" : "") << "\n";
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "\n";

  const BuildResult build = run_build(cfg);
  std::cout << "build (" << build.text_bytes << " B text)\n"
            << "  1 thread  : " << build.secs_1t << " s\n"
            << "  2 threads : " << build.secs_2t << " s\n"
            << "  4 threads : " << build.secs_4t << " s\n"
            << "  8 threads : " << build.secs_8t << " s\n"
            << "  speedup@4 : " << build.speedup_4t << "x\n";

  const ColdLoadResult cold = run_cold_load(cfg);
  std::cout << "cold load (v2 " << cold.file_mb_v2 << " MB, v3 "
            << cold.file_mb_v3 << " MB, v4 " << cold.file_mb_v4 << " MB)\n"
            << "  v2 stream      : " << cold.v2_stream_mb_s << " MB/s\n"
            << "  v3 stream      : " << cold.v3_stream_mb_s << " MB/s\n"
            << "  v4 stream      : " << cold.v4_stream_mb_s << " MB/s\n"
            << "  v3 mmap attach : " << cold.v3_mmap_attach_mb_s << " MB/s ("
            << cold.v3_mmap_attach_secs * 1e3 << " ms)\n"
            << "  v4 mmap attach : " << cold.v4_mmap_attach_secs * 1e3
            << " ms\n"
            << "  mmap vs v2 stream speedup: " << cold.mmap_vs_stream_speedup
            << "x\n"
            << "  packed resident text shrink: " << cold.packed_text_ratio
            << "x\n";

  const CacheResult cache = run_cache(cfg);
  std::cout << "cache (" << cfg.cache_workers << " workers, 2 keys, "
            << cfg.cache_loader_secs << " s loader)\n"
            << "  loader invocations : " << cache.loader_invocations << "\n"
            << "  duplicate loads    : " << cache.duplicate_loads << "\n"
            << "  hits               : " << cache.hits << "\n"
            << "  wall               : " << cache.wall_secs << " s\n"
            << "  concurrency ratio  : " << cache.concurrency_ratio << "\n";

  JsonObject config_json;
  config_json
      .add("build_chromosomes", static_cast<u64>(cfg.build_chromosomes))
      .add("build_chromosome_length",
           static_cast<u64>(cfg.build_chromosome_length))
      .add("build_passes", static_cast<u64>(cfg.build_passes))
      .add("load_passes", static_cast<u64>(cfg.load_passes))
      .add("cache_workers", static_cast<u64>(cfg.cache_workers))
      .add("cache_loader_secs", cfg.cache_loader_secs)
      .add("hardware_threads",
           static_cast<u64>(std::thread::hardware_concurrency()));
  JsonObject build_json;
  build_json.add("secs_1t", build.secs_1t)
      .add("secs_2t", build.secs_2t)
      .add("secs_4t", build.secs_4t)
      .add("secs_8t", build.secs_8t)
      .add("speedup_4t", build.speedup_4t)
      .add("text_bytes", build.text_bytes);
  JsonObject cold_json;
  cold_json.add("file_mb_v2", cold.file_mb_v2)
      .add("file_mb_v3", cold.file_mb_v3)
      .add("file_mb_v4", cold.file_mb_v4)
      .add("v2_stream_mb_s", cold.v2_stream_mb_s)
      .add("v3_stream_mb_s", cold.v3_stream_mb_s)
      .add("v4_stream_mb_s", cold.v4_stream_mb_s)
      .add("v3_mmap_attach_mb_s", cold.v3_mmap_attach_mb_s)
      .add("v3_mmap_attach_secs", cold.v3_mmap_attach_secs)
      .add("v4_mmap_attach_secs", cold.v4_mmap_attach_secs)
      .add("v2_stream_secs", cold.v2_stream_secs)
      .add("mmap_vs_stream_speedup", cold.mmap_vs_stream_speedup)
      .add("packed_text_ratio", cold.packed_text_ratio);
  JsonObject cache_json;
  cache_json.add("loader_invocations", cache.loader_invocations)
      .add("duplicate_loads", cache.duplicate_loads)
      .add("hits", cache.hits)
      .add("wall_secs", cache.wall_secs)
      .add("concurrency_ratio", cache.concurrency_ratio);
  JsonObject root;
  root.add("bench", "index_startup")
      .add("schema_version", 2)
      .add("smoke", cfg.smoke)
      .add("config", config_json)
      .add("build", build_json)
      .add("cold_load", cold_json)
      .add("cache", cache_json);
  root.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int failures = check_results(baseline_path, build, cold, cache);
    if (failures) {
      std::cerr << failures << " smoke check(s) failed\n";
      return 1;
    }
    std::cout << "smoke checks passed vs " << baseline_path << "\n";
  }
  return 0;
}
