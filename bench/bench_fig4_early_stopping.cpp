// FIG4 — "Time savings due to early stopping feature" (paper §III.B).
//
// Two-level reproduction:
//  1. CALIBRATION (real alignment): a panel of bulk and single-cell
//     samples is aligned for real; the measured mapping rates (final and
//     at the 10% checkpoint) validate the early-stop separation and refit
//     the MapRateModel.
//  2. CORPUS ACCOUNTING (paper scale): the paper's corpus of 1000
//     alignments (38 single-cell) is costed with the Fig 4 anchor of
//     35.3 STAR-seconds per FASTQ GiB on r6a.4xlarge; the early-stopping
//     rule (stop at 10% of reads if mapped < 30%) is applied per sample
//     using the calibrated model. Targets: 38 early stops, 30.4 h saved
//     of 155.8 h total (19.5%).

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/early_stopping.h"
#include "core/maprate_model.h"
#include "core/report.h"
#include "sim/catalog.h"

using namespace staratlas;
using namespace staratlas::bench;

int main() {
  const BenchWorld& w = bench_world();
  const EarlyStopPolicy policy;  // paper defaults: 10% checkpoint, 30% rate

  // ---------------- 1. Calibration panel (real alignment) ----------------
  std::cout << "FIG4 part 1: real-alignment calibration panel\n";
  Table panel({"sample", "type", "reads", "map@10%", "map@final",
               "early-stop?"});
  std::vector<double> bulk_rates;
  std::vector<double> sc_rates;
  usize panel_stops = 0;
  usize panel_sc = 0;
  for (usize i = 0; i < 14; ++i) {
    const bool single_cell = i % 3 == 2;  // 4-5 of 14
    const LibraryProfile profile =
        single_cell ? single_cell_profile() : bulk_rna_profile();
    const ReadSet reads = w.simulator->simulate(profile, 3'000, Rng(400 + i));

    // Run WITHOUT aborting so we observe both checkpoint and final rate.
    double rate_at_checkpoint = -1.0;
    EngineConfig config;
    config.num_threads = 4;
    config.progress_check_interval = reads.size() / 20;
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                                 config);
    const AlignmentRun run =
        engine.run(reads, [&](const ProgressSnapshot& snap) {
          if (rate_at_checkpoint < 0.0 &&
              snap.fraction_processed() >= policy.checkpoint_fraction) {
            rate_at_checkpoint = snap.mapped_rate();
          }
          return EngineCommand::kContinue;
        });
    const double final_rate = run.stats.mapped_rate();
    const bool would_stop = early_stop_decision(policy, rate_at_checkpoint);
    panel_stops += would_stop ? 1 : 0;
    panel_sc += single_cell ? 1 : 0;
    (single_cell ? sc_rates : bulk_rates).push_back(final_rate);
    panel.add_row(
        {strf("panel-%02zu", i), single_cell ? "single-cell" : "bulk",
         strf("%zu", reads.size()), strf("%.1f%%", 100.0 * rate_at_checkpoint),
         strf("%.1f%%", 100.0 * final_rate), would_stop ? "STOP" : "continue"});
  }
  panel.print(std::cout);
  std::cout << "panel: " << panel_stops << "/" << panel_sc
            << " single-cell samples flagged, 0 bulk false-positives "
               "expected\n\n";

  MapRateModel model;
  model.calibrate(bulk_rates, sc_rates);
  std::cout << "calibrated: bulk " << strf("%.1f%% +/- %.1f", 100 * model.bulk_mean, 100 * model.bulk_sd)
            << ", single-cell "
            << strf("%.1f%% +/- %.1f", 100 * model.single_cell_mean, 100 * model.single_cell_sd)
            << "\n\n";

  // ---------------- 2. Paper-scale corpus accounting ----------------
  CatalogSpec corpus;
  corpus.num_samples = 1'000;
  corpus.single_cell_fraction = 0.038;  // 38 of 1000
  corpus.seed = 88;
  const auto catalog = make_catalog(corpus);

  Rng noise(1234);
  double total_hours = 0.0;
  double spent_hours = 0.0;
  double saved_hours = 0.0;
  usize stopped = 0;
  struct StoppedRun {
    double full_hours;
    double spent_hours;
  };
  std::vector<StoppedRun> stopped_runs;

  for (const auto& sample : catalog) {
    const double full_hours =
        sample.fastq_bytes.gib() * kPaperAlignSecsPerGib / 3600.0;
    total_hours += full_hours;
    Rng rate_rng = Rng(sample.seed).fork("true_rate");
    const double true_rate = model.sample_true_rate(sample.type, rate_rng);
    const double observed = model.checkpoint_observation(true_rate, noise);
    if (early_stop_decision(policy, observed)) {
      ++stopped;
      const double spent = full_hours * policy.checkpoint_fraction;
      spent_hours += spent;
      saved_hours += full_hours - spent;
      stopped_runs.push_back({full_hours, spent});
    } else {
      spent_hours += full_hours;
    }
  }

  std::cout << "FIG4 part 2: corpus of " << catalog.size()
            << " alignments (early stop at "
            << strf("%.0f%%", 100 * policy.checkpoint_fraction)
            << " of reads if mapped < "
            << strf("%.0f%%", 100 * policy.min_mapped_rate) << ")\n";
  Table result({"metric", "paper", "measured"});
  result.add_row({"total STAR hours (no early stop)", "155.8 h",
                  strf("%.1f h", total_hours)});
  result.add_row({"alignments early-stopped", "38 / 1000",
                  strf("%zu / %zu", stopped, catalog.size())});
  result.add_row({"hours saved", "30.4 h", strf("%.1f h", saved_hours)});
  result.add_row({"reduction in STAR execution time", "19.5%",
                  strf("%.1f%%", 100.0 * saved_hours / total_hours)});
  result.print(std::cout);

  // Fig 4's bars: the largest early-stopped runs, spent vs avoided time.
  std::sort(stopped_runs.begin(), stopped_runs.end(),
            [](const StoppedRun& a, const StoppedRun& b) {
              return a.full_hours > b.full_hours;
            });
  std::cout << "\nlargest early-stopped runs (yellow bar = avoided compute):\n";
  Table bars({"rank", "full align (h)", "spent (h)", "avoided (h)"});
  for (usize i = 0; i < std::min<usize>(10, stopped_runs.size()); ++i) {
    bars.add_row({strf("%zu", i + 1), strf("%.2f", stopped_runs[i].full_hours),
                  strf("%.2f", stopped_runs[i].spent_hours),
                  strf("%.2f", stopped_runs[i].full_hours -
                                   stopped_runs[i].spent_hours)});
  }
  bars.print(std::cout);
  return 0;
}
