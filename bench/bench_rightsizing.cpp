// RSIZE — instance right-sizing (paper §III.A: "using a much smaller
// index allows us to use smaller and cheaper instances").
//
// For each genome release, every EC2 type in the catalog is checked for
// feasibility (index + working set must fit RAM) and ranked by modeled
// $/sample. The headline: release 111 admits 64 GiB boxes the release-108
// index cannot use, cutting cost per sample.

#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/rightsizing.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

void report_release(int release, double index_gib, double slowdown) {
  RightSizingQuery query;
  query.genome_release = release;
  query.index_bytes = ByteSize::from_gib(index_gib);
  query.stages.release_slowdown_108 = slowdown;
  std::cout << "release " << release << " (index " << index_gib << " GiB):\n";
  Table table({"instance", "vCPU", "RAM", "feasible", "sample time",
               "$/sample", "samples/h"});
  for (const auto& option : evaluate_instances(query)) {
    table.add_row(
        {option.type->name, strf("%u", option.type->vcpus),
         option.type->memory.str(), option.feasible ? "yes" : "NO",
         option.feasible ? strf("%.0f s", option.sample_seconds) : "-",
         option.feasible ? strf("$%.3f", option.cost_per_sample_usd) : "-",
         option.feasible ? strf("%.2f", option.samples_per_hour) : "-"});
  }
  table.print(std::cout);
  const auto best = best_option(evaluate_instances(query));
  std::cout << "cheapest feasible: " << best.type->name << " at "
            << strf("$%.3f", best.cost_per_sample_usd) << " per sample\n\n";
}

}  // namespace

int main() {
  // Measure the release-108 slowdown on real alignment once.
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 4'000, Rng(55));
  const double slowdown = align_reads(w.index108, reads).wall_seconds /
                          align_reads(w.index111, reads).wall_seconds;

  std::cout << "RSIZE: instance right-sizing by genome release\n\n";
  report_release(108, kPaperIndexGib108, slowdown);
  report_release(111, kPaperIndexGib111, slowdown);

  RightSizingQuery q108;
  q108.genome_release = 108;
  q108.index_bytes = ByteSize::from_gib(kPaperIndexGib108);
  q108.stages.release_slowdown_108 = slowdown;
  RightSizingQuery q111;
  q111.genome_release = 111;
  q111.index_bytes = ByteSize::from_gib(kPaperIndexGib111);
  const auto best108 = best_option(evaluate_instances(q108));
  const auto best111 = best_option(evaluate_instances(q111));

  Table result({"metric", "paper claim", "measured/modeled"});
  result.add_row({"smaller instances usable with r111 index",
                  "yes (\"smaller and cheaper instances\")",
                  strf("%s (%.0f GiB RAM) vs %s (%.0f GiB RAM)",
                       best111.type->name.c_str(), best111.type->memory.gib(),
                       best108.type->name.c_str(), best108.type->memory.gib())});
  result.add_row({"cost per sample improvement", "not quantified",
                  strf("%.1fx cheaper ($%.3f -> $%.3f)",
                       best108.cost_per_sample_usd / best111.cost_per_sample_usd,
                       best108.cost_per_sample_usd,
                       best111.cost_per_sample_usd)});
  result.print(std::cout);
  return 0;
}
