// RSIZE — instance right-sizing (paper §III.A: "using a much smaller
// index allows us to use smaller and cheaper instances").
//
// For each genome release, every EC2 type in the catalog is checked for
// feasibility (index + working set must fit RAM) and ranked by modeled
// $/sample. The headline: release 111 admits 64 GiB boxes the release-108
// index cannot use, cutting cost per sample.

#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/rightsizing.h"

using namespace staratlas;
using namespace staratlas::bench;

namespace {

void report_release(int release, double index_gib, double slowdown,
                    const char* label = "") {
  RightSizingQuery query;
  query.cloud.genome_release = release;
  query.cloud.index_bytes = ByteSize::from_gib(index_gib);
  query.cloud.stages.release_slowdown_108 = slowdown;
  std::cout << "release " << release << label << " (index " << index_gib
            << " GiB):\n";
  Table table({"instance", "vCPU", "RAM", "feasible", "sample time",
               "$/sample", "samples/h"});
  for (const auto& option : evaluate_instances(query)) {
    table.add_row(
        {option.type->name, strf("%u", option.type->vcpus),
         option.type->memory.str(), option.feasible ? "yes" : "NO",
         option.feasible ? strf("%.0f s", option.sample_seconds) : "-",
         option.feasible ? strf("$%.3f", option.cost_per_sample_usd) : "-",
         option.feasible ? strf("%.2f", option.samples_per_hour) : "-"});
  }
  table.print(std::cout);
  const auto best = best_option(evaluate_instances(query));
  std::cout << "cheapest feasible: " << best.type->name << " at "
            << strf("$%.3f", best.cost_per_sample_usd) << " per sample\n\n";
}

}  // namespace

int main() {
  // Measure the release-108 slowdown on real alignment once.
  const BenchWorld& w = bench_world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 4'000, Rng(55));
  const double slowdown = align_reads(w.index108, reads).wall_seconds /
                          align_reads(w.index111, reads).wall_seconds;

  // Packed-index (v4) scenario: the 29.5 GiB anchor scaled by the
  // measured packed/raw footprint ratio of a real v4 round-trip of the
  // bench index. Only the text section packs (SA/LUT are unchanged), so
  // the shrink is the text share of the total, not the ideal 4x.
  const double packed_ratio = packed_index_footprint_ratio();
  const double packed_gib_111 = kPaperIndexGib111 * packed_ratio;

  std::cout << "RSIZE: instance right-sizing by genome release\n"
            << "measured packed(v4)/raw index footprint ratio: "
            << strf("%.3f", packed_ratio) << "\n\n";
  report_release(108, kPaperIndexGib108, slowdown);
  report_release(111, kPaperIndexGib111, slowdown);
  report_release(111, packed_gib_111, slowdown, " packed (v4)");

  RightSizingQuery q108;
  q108.cloud.genome_release = 108;
  q108.cloud.index_bytes = ByteSize::from_gib(kPaperIndexGib108);
  q108.cloud.stages.release_slowdown_108 = slowdown;
  RightSizingQuery q111;
  q111.cloud.genome_release = 111;
  q111.cloud.index_bytes = ByteSize::from_gib(kPaperIndexGib111);
  RightSizingQuery q111p = q111;
  q111p.cloud.index_bytes = ByteSize::from_gib(packed_gib_111);
  const auto best108 = best_option(evaluate_instances(q108));
  const auto best111 = best_option(evaluate_instances(q111));
  const auto best111p = best_option(evaluate_instances(q111p));

  Table result({"metric", "paper claim", "measured/modeled"});
  result.add_row({"smaller instances usable with r111 index",
                  "yes (\"smaller and cheaper instances\")",
                  strf("%s (%.0f GiB RAM) vs %s (%.0f GiB RAM)",
                       best111.type->name.c_str(), best111.type->memory.gib(),
                       best108.type->name.c_str(), best108.type->memory.gib())});
  result.add_row({"cost per sample improvement", "not quantified",
                  strf("%.1fx cheaper ($%.3f -> $%.3f)",
                       best108.cost_per_sample_usd / best111.cost_per_sample_usd,
                       best108.cost_per_sample_usd,
                       best111.cost_per_sample_usd)});
  result.add_row(
      {"packed (v4) index footprint", "beyond the paper",
       strf("%.1f GiB -> %.1f GiB (measured %.3fx ratio)", kPaperIndexGib111,
            packed_gib_111, packed_ratio)});
  result.add_row(
      {"cheapest instance with packed index", "beyond the paper",
       strf("%s ($%.3f/sample) vs %s ($%.3f/sample)",
            best111p.type->name.c_str(), best111p.cost_per_sample_usd,
            best111.type->name.c_str(), best111.cost_per_sample_usd)});
  result.print(std::cout);
  return 0;
}
